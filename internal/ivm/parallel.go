package ivm

import (
	"fmt"
	"runtime"
	"sync"

	"fivm/internal/data"
	"fivm/internal/query"
	"fivm/internal/ring"
)

// Parallel is a sharded parallel maintainer: it hash-partitions the
// database by one join variable — the shard variable — and runs one
// independent inner maintainer per shard on a fixed worker pool.
//
// Correctness rests on partition-plus-broadcast join distribution. Let X be
// the shard variable and h the shard assignment on its values. Relations
// whose schema contains X are partitioned: shard i holds exactly the tuples
// with h(t[X]) = i. Relations without X are broadcast, fully replicated in
// every shard. Tuples from different partitions of X-bearing relations never
// join (they disagree on X), and every join output binds X, so the full
// join is the disjoint union of the per-shard joins; marginalization
// distributes over that union. The maintained query result is therefore the
// key-wise payload sum of the shard results, which Result materializes:
// disjoint key union when X is free in the query, a payload reduction when
// X is aggregated away (the empty-key root of Figure 7's cofactor queries).
//
// The shard variable is the query variable covered by the most relation
// schemas (the root of the paper's variable orders for the snowflake and
// star workloads). When the query has no variables to shard on, or workers
// is 1, Parallel degenerates to a zero-overhead sequential delegate.
//
// Floating-point caveat: shard results are reduced key-wise (Result in
// fixed shard order, published snapshots in sorted-entry encounter order),
// and either order differs from sequential update order, so non-integral
// float payloads may round differently than a single-threaded run. Integer
// and integral-float workloads (and the paper's benchmarks) are exact.
type Parallel[P any] struct {
	q        query.Query
	ring     ring.Ring[P]
	shardVar string
	shards   []Maintainer[P]

	jobs   chan func()
	closed bool
	// sem caps concurrently running shard jobs at the GOMAXPROCS value in
	// effect per dispatch; allocated lazily, only when shards exceed cores.
	sem chan struct{}

	// Routing scratch, reused across ApplyDeltas calls: one Sharded routing
	// relation per updated relation name, the per-shard batches assembled
	// from them, and the per-shard error slots for one dispatch.
	routes  map[string]*data.Sharded[P]
	order   []string
	batches [][]NamedDelta[P]
	errs    []error
	one     []NamedDelta[P]

	// stats, when attached via CollectStats, observes the routing path:
	// partitioned deltas through the Sharded routing relations, broadcast
	// deltas directly. Router-owned (same goroutine as ApplyDeltas).
	stats *data.Stats

	// pub publishes the key-wise reduced result after each batch once
	// serving is enabled (sharded mode only; the sequential fallback
	// delegates to its inner maintainer's publisher). reduceParts is the
	// reusable shard-result list handed to data.ReduceSealed per publish.
	pub         publisher[P]
	reduceParts []*data.Relation[P]
}

// CollectStats attaches a statistics collector to the router: every delta
// tuple routed through the maintainer is observed (update rates and value
// sketches) before it is dispatched, via Sharded.CollectStats for
// partitioned relations. The per-shard inner maintainers keep their own
// collectors; this one sees the undivided stream and is what ANALYZE-seeded
// benchmark collectors pass to keep delta rates current. Must be called
// from the goroutine that applies deltas.
func (p *Parallel[P]) CollectStats(st *data.Stats) {
	p.stats = st
	for rel, route := range p.routes {
		p.attachRouteStats(rel, route)
	}
}

// attachRouteStats hooks the collector into one routing relation, provided
// the collector's column order matches (a relation re-registered under a
// permuted schema keeps its first registration; mismatched sketches would
// misalign).
func (p *Parallel[P]) attachRouteStats(rel string, route *data.Sharded[P]) {
	if p.stats == nil {
		return
	}
	sch := route.Shard(0).Schema()
	rs := p.stats.Rel(rel, sch)
	if rs.Schema.Equal(sch) {
		route.CollectStats(rs)
	}
}

// pickShardVar returns the query variable contained in the most relation
// schemas, breaking ties by the query's variable order. Empty only when the
// query has no variables.
func pickShardVar(q query.Query) string {
	best, bestCover := "", 0
	for _, v := range q.Vars() {
		cover := 0
		for _, rd := range q.Rels {
			if rd.Schema.Contains(v) {
				cover++
			}
		}
		if cover > bestCover {
			best, bestCover = v, cover
		}
	}
	return best
}

// NewParallel builds a sharded parallel maintainer over workers shards,
// each an independent maintainer built by factory (strategies hold
// per-instance state, so every shard needs its own). workers <= 1, or a
// query with nothing to shard on, yields a sequential single-shard
// delegate.
//
// The shard count is NOT clamped to the host's core count at construction:
// partitioning is a data layout decision that must stay stable for the
// maintainer's lifetime, while the core budget is a scheduling decision that
// can change at any time (runtime.GOMAXPROCS, container quota updates).
// Instead, dispatch caps the shards propagating concurrently at the
// GOMAXPROCS value in effect for each batch, so an 8-shard maintainer on a
// 4-core budget runs 4 shards at a time rather than thrashing 8.
func NewParallel[P any](q query.Query, r ring.Ring[P], workers int, factory func() (Maintainer[P], error)) (*Parallel[P], error) {
	return newParallel(q, r, workers, factory)
}

// newParallel is the shared constructor behind NewParallel, kept separate
// for tests that exercise the sharding math at fixed shard counts.
func newParallel[P any](q query.Query, r ring.Ring[P], workers int, factory func() (Maintainer[P], error)) (*Parallel[P], error) {
	shardVar := pickShardVar(q)
	if workers < 1 || shardVar == "" {
		workers = 1
	}
	p := &Parallel[P]{q: q, ring: r, shardVar: shardVar}
	if workers == 1 {
		m, err := factory()
		if err != nil {
			return nil, err
		}
		p.shards = []Maintainer[P]{m}
		return p, nil
	}
	for i := 0; i < workers; i++ {
		m, err := factory()
		if err != nil {
			p.Close()
			return nil, err
		}
		p.shards = append(p.shards, m)
	}
	p.routes = make(map[string]*data.Sharded[P])
	p.batches = make([][]NamedDelta[P], workers)
	p.errs = make([]error, workers)
	p.jobs = make(chan func(), workers)
	for i := 0; i < workers; i++ {
		go func() {
			for f := range p.jobs {
				f()
			}
		}()
	}
	return p, nil
}

// Sharded reports whether the maintainer actually partitions work (false
// for the sequential single-shard fallback).
func (p *Parallel[P]) Sharded() bool { return len(p.shards) > 1 }

// Workers returns the number of shards (1 for the sequential fallback).
func (p *Parallel[P]) Workers() int { return len(p.shards) }

// ShardVar returns the variable the database is partitioned on ("" when the
// query has no variables).
func (p *Parallel[P]) ShardVar() string { return p.shardVar }

// Close stops the worker pool. The maintainer must not be used afterwards.
func (p *Parallel[P]) Close() error {
	if p.jobs != nil && !p.closed {
		close(p.jobs)
		p.closed = true
	}
	return nil
}

// dispatch runs f(shard) for every shard in the index set on the worker
// pool and returns the first error in shard order. In-flight jobs are capped
// at the runtime.GOMAXPROCS value read per call — not at construction — so
// the maintainer adapts when the core budget changes under it; when the
// budget covers every shard the cap adds no work at all.
func (p *Parallel[P]) dispatch(idx []int, f func(s int) error) error {
	var sem chan struct{}
	if limit := runtime.GOMAXPROCS(0); limit < len(idx) {
		if cap(p.sem) != limit {
			p.sem = make(chan struct{}, limit)
		}
		sem = p.sem
	}
	var wg sync.WaitGroup
	for _, s := range idx {
		s := s
		wg.Add(1)
		if sem != nil {
			sem <- struct{}{} // acquired before enqueue; released by the job
		}
		p.jobs <- func() {
			defer wg.Done()
			p.errs[s] = f(s)
			if sem != nil {
				<-sem
			}
		}
	}
	wg.Wait()
	for _, s := range idx {
		if err := p.errs[s]; err != nil {
			p.errs[s] = nil
			return fmt.Errorf("ivm: shard %d: %w", s, err)
		}
		p.errs[s] = nil
	}
	return nil
}

// allShards returns [0..n) for dispatching to every shard.
func (p *Parallel[P]) allShards() []int {
	out := make([]int, len(p.shards))
	for i := range out {
		out[i] = i
	}
	return out
}

// Load installs initial contents, splitting relations that carry the shard
// variable and replicating the rest. Every shard gets its own clone — never
// the caller's relation — so per-relation scratch state never crosses
// goroutines and later caller-side mutations of r cannot skew one shard's
// snapshot against the others'.
func (p *Parallel[P]) Load(rel string, r *data.Relation[P]) error {
	if !p.Sharded() {
		return p.shards[0].Load(rel, r)
	}
	if r.Schema().Contains(p.shardVar) {
		parts, err := data.Split(r, p.shardVar, len(p.shards))
		if err != nil {
			return err
		}
		for s, part := range parts {
			if err := p.shards[s].Load(rel, part); err != nil {
				return err
			}
		}
		return nil
	}
	for _, m := range p.shards {
		if err := m.Load(rel, r.Clone()); err != nil {
			return err
		}
	}
	return nil
}

// LoadOwned is Load with ownership transfer (see Engine.LoadOwned). Shard
// partitions are fresh relations and are always handed over owned; broadcast
// relations give the original to the first shard and owned clones to the
// rest, so no shard re-copies at Init. Inner maintainers that do not adopt
// bases fall back to plain Load.
func (p *Parallel[P]) LoadOwned(rel string, r *data.Relation[P]) error {
	if !p.Sharded() {
		return loadMaybeOwned(p.shards[0], rel, r)
	}
	if r.Schema().Contains(p.shardVar) {
		parts, err := data.Split(r, p.shardVar, len(p.shards))
		if err != nil {
			return err
		}
		for s, part := range parts {
			if err := loadMaybeOwned(p.shards[s], rel, part); err != nil {
				return err
			}
		}
		return nil
	}
	for s, m := range p.shards {
		in := r
		if s > 0 {
			in = r.Clone()
		}
		if err := loadMaybeOwned(m, rel, in); err != nil {
			return err
		}
	}
	return nil
}

// BaseAdopter is the optional Maintainer extension for ownership-transfer
// loading: LoadOwned adopts the relation as view backing storage instead of
// copying it, and the caller must not touch it afterwards. Engine and
// Parallel implement it; loaders probe for it and fall back to Load.
type BaseAdopter[P any] interface {
	LoadOwned(rel string, r *data.Relation[P]) error
}

// loadMaybeOwned hands a relation to a maintainer with ownership transfer
// when supported.
func loadMaybeOwned[P any](m Maintainer[P], rel string, r *data.Relation[P]) error {
	if a, ok := m.(BaseAdopter[P]); ok {
		return a.LoadOwned(rel, r)
	}
	return m.Load(rel, r)
}

// Init initializes every shard in parallel.
func (p *Parallel[P]) Init() error {
	if !p.Sharded() {
		return p.shards[0].Init()
	}
	return p.dispatch(p.allShards(), func(s int) error { return p.shards[s].Init() })
}

// ApplyDelta routes one relation's delta to its shards and propagates in
// parallel.
func (p *Parallel[P]) ApplyDelta(rel string, delta *data.Relation[P]) error {
	if !p.Sharded() {
		return p.shards[0].ApplyDelta(rel, delta)
	}
	p.one = append(p.one[:0], NamedDelta[P]{Rel: rel, Delta: delta})
	return p.ApplyDeltas(p.one)
}

// ApplyDeltas routes a batch: deltas of shard-variable relations are
// hash-partitioned tuple by tuple, deltas of broadcast relations go to
// every shard (shared read-only — maintainers only iterate input deltas),
// then every shard with work propagates concurrently on the worker pool.
func (p *Parallel[P]) ApplyDeltas(batch []NamedDelta[P]) error {
	if !p.Sharded() {
		return p.shards[0].ApplyDeltas(batch)
	}
	n := len(p.shards)
	for s := range p.batches {
		p.batches[s] = p.batches[s][:0]
	}
	p.order = p.order[:0]
	for _, nd := range batch {
		if nd.Delta == nil || nd.Delta.Len() == 0 {
			continue
		}
		if !nd.Delta.Schema().Contains(p.shardVar) {
			if p.stats != nil {
				data.ObserveDeltaRelation(p.stats, nd.Rel, nd.Delta.Schema(), nd.Delta)
			}
			for s := range p.batches {
				p.batches[s] = append(p.batches[s], nd)
			}
			continue
		}
		seen := false
		for _, prev := range p.order {
			if prev == nd.Rel {
				seen = true
				break
			}
		}
		route := p.routes[nd.Rel]
		if !seen {
			// First occurrence of this relation in the batch: reset or
			// (re)build its routing scratch. Later occurrences accumulate
			// into the same scratch, coalescing per shard.
			if route != nil && route.N() == n && route.Shard(0).Schema().Equal(nd.Delta.Schema()) {
				route.Clear()
			} else {
				var err error
				route, err = data.NewSharded[P](p.ring, nd.Delta.Schema(), p.shardVar, n)
				if err != nil {
					return err
				}
				p.attachRouteStats(nd.Rel, route)
				p.routes[nd.Rel] = route
			}
			p.order = append(p.order, nd.Rel)
		}
		d := nd.Delta
		if rs := route.Shard(0).Schema(); !rs.Equal(d.Schema()) {
			// A repeated relation arrived with a differently ordered schema;
			// normalize to the routing schema before partitioning.
			d = data.Project(d, rs)
		}
		d.Iterate(func(t data.Tuple, pl P) bool {
			route.Merge(t, pl)
			return true
		})
	}
	// Assemble per-shard batches from the routed relations (only now are
	// same-relation deltas fully coalesced per shard).
	for _, rel := range p.order {
		route := p.routes[rel]
		for s := 0; s < n; s++ {
			if d := route.Shard(s); d.Len() > 0 {
				p.batches[s] = append(p.batches[s], NamedDelta[P]{Rel: rel, Delta: d})
			}
		}
	}
	var idx [64]int
	work := idx[:0]
	for s := 0; s < n; s++ {
		if len(p.batches[s]) > 0 {
			work = append(work, s)
		}
	}
	if len(work) == 0 {
		p.maybePublish()
		return nil
	}
	if err := p.dispatch(work, func(s int) error { return p.shards[s].ApplyDeltas(p.batches[s]) }); err != nil {
		return err
	}
	// Publication happens after the cross-shard barrier, on the routing
	// goroutine: the epoch reflects the whole batch across every shard.
	p.maybePublish()
	return nil
}

// Result merges the shard results key-wise: the disjoint union of shard
// outputs when the shard variable is free, the payload sum when it is
// aggregated away. The merge reads every shard's live result, so it must
// not race ApplyDeltas; concurrent readers go through Snapshot, which
// publishes the reduction after each batch.
func (p *Parallel[P]) Result() *data.Relation[P] {
	if !p.Sharded() {
		return p.shards[0].Result()
	}
	first := p.shards[0].Result()
	out := data.NewRelation(p.ring, first.Schema())
	out.Reserve(first.Len())
	for _, m := range p.shards {
		out.MergeAll(m.Result())
	}
	return out
}

// ViewCount reports the logical view count (every shard materializes the
// same view structure).
func (p *Parallel[P]) ViewCount() int { return p.shards[0].ViewCount() }

// MemoryBytes sums the shards' materialized state (broadcast relations are
// replicated and counted once per shard, as they are truly held per shard).
func (p *Parallel[P]) MemoryBytes() int {
	total := 0
	for _, m := range p.shards {
		total += m.MemoryBytes()
	}
	return total
}
