package ivm

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"fivm/internal/data"
	"fivm/internal/query"
	"fivm/internal/ring"
)

// Recursive is a fully recursive higher-order IVM maintainer in the style
// of DBToaster (the paper's DBT and DBT-RING competitors): for every
// materialized view V and every updatable relation R in V, the delta query
// δ_R V decomposes into connected components once R's variables are fixed
// by the update tuple; each component is materialized as its own view, and
// the construction recurses. The result is one materialization hierarchy
// per relation — typically many more views than F-IVM's single view tree,
// which is the space/time gap the paper measures.
type Recursive[P any] struct {
	q         query.Query
	ring      ring.Ring[P]
	lift      data.LiftFunc[P]
	updatable map[string]bool

	views    map[string]*recView[P]
	order    []*recView[P] // creation order (children before parents)
	affected map[string][]*recView[P]
	root     *recView[P]

	bases map[string]*data.Relation[P]
	ready bool
	pub   publisher[P]

	// Reusable scratch for viewDelta (single-threaded per maintainer).
	items, spare []workItem[P]
	prods        prodBuf[P]
	keyBuf       []byte
	liftScratch  P
}

type recView[P any] struct {
	sig    string
	rels   []string // sorted relation names
	free   data.Schema
	rel    *data.IndexedRelation[P]
	deltas map[string]*recDelta[P]
}

type recDelta[P any] struct {
	comps   []recComp[P]
	acc     data.Schema
	marg    []margVar
	outProj data.Projector

	// Sorted-run accumulation state for marginalizing deltas; see runFuser.
	fuse   runFuser[P]
	liftFn func(t data.Tuple) *P
}

type recComp[P any] struct {
	view      *recView[P]
	common    data.Schema
	probeProj data.Projector
	full      bool
	extra     data.Schema
	extraProj data.Projector
}

// NewRecursive builds the recursive view hierarchy for a query. The
// updatable set bounds which hierarchies are constructed; empty means all
// relations.
func NewRecursive[P any](q query.Query, r ring.Ring[P], lift data.LiftFunc[P], updatable []string) (*Recursive[P], error) {
	m := &Recursive[P]{
		q:         q,
		ring:      r,
		lift:      lift,
		updatable: make(map[string]bool),
		views:     make(map[string]*recView[P]),
		affected:  make(map[string][]*recView[P]),
		bases:     make(map[string]*data.Relation[P]),
	}
	if len(updatable) == 0 {
		updatable = q.RelNames()
	}
	for _, name := range updatable {
		if _, ok := q.Rel(name); !ok {
			return nil, fmt.Errorf("ivm: updatable relation %q not in query", name)
		}
		m.updatable[name] = true
	}
	rels := append([]string(nil), q.RelNames()...)
	sort.Strings(rels)
	m.root = m.getView(rels, q.Free)
	return m, nil
}

func viewSig(rels []string, free data.Schema) string {
	fs := append([]string(nil), free...)
	sort.Strings(fs)
	return strings.Join(rels, ",") + "|" + strings.Join(fs, ",")
}

// getView returns (building and memoizing if needed) the view over the
// given sorted relation subset with the given free variables.
func (m *Recursive[P]) getView(rels []string, free data.Schema) *recView[P] {
	sig := viewSig(rels, free)
	if v, ok := m.views[sig]; ok {
		return v
	}
	v := &recView[P]{
		sig:    sig,
		rels:   rels,
		free:   free.Clone(),
		rel:    data.NewIndexedRelation(data.NewRelation(m.ring, free.Clone())),
		deltas: make(map[string]*recDelta[P]),
	}
	m.views[sig] = v

	for _, rname := range rels {
		if !m.updatable[rname] {
			continue
		}
		m.affected[rname] = append(m.affected[rname], v)
		if len(rels) == 1 {
			continue // single-relation views aggregate the delta directly
		}
		rd, _ := m.q.Rel(rname)

		// Split the remaining relations into components connected through
		// variables not fixed by the update tuple (those outside sch(R)).
		var others []query.RelDef
		for _, n := range rels {
			if n != rname {
				od, _ := m.q.Rel(n)
				others = append(others, od)
			}
		}
		comps := connectedComponents(others, rd.Schema)

		d := &recDelta[P]{acc: rd.Schema.Clone()}
		for _, comp := range comps {
			var compVars data.Schema
			compNames := make([]string, 0, len(comp))
			for _, c := range comp {
				compVars = compVars.Union(c.Schema)
				compNames = append(compNames, c.Name)
			}
			sort.Strings(compNames)
			freeC := compVars.Intersect(rd.Schema.Union(free))
			d.comps = append(d.comps, recComp[P]{view: m.getView(compNames, freeC)})
		}

		// Order components greedily by overlap with the accumulated schema
		// and precompute probe/extension projections.
		acc := rd.Schema.Clone()
		pending := d.comps
		d.comps = nil
		for len(pending) > 0 {
			best, bestOverlap := 0, -1
			for i, c := range pending {
				if ov := len(c.view.free.Intersect(acc)); ov > bestOverlap {
					best, bestOverlap = i, ov
				}
			}
			c := pending[best]
			pending = append(pending[:best], pending[best+1:]...)
			c.common = c.view.free.Intersect(acc)
			c.probeProj = data.MustProjector(acc, c.common)
			c.full = c.common.SameSet(c.view.free)
			c.extra = c.view.free.Minus(c.common)
			c.extraProj = data.MustProjector(c.view.free, c.extra)
			d.comps = append(d.comps, c)
			acc = acc.Union(c.extra)
		}
		d.acc = acc
		for _, x := range rd.Schema.Minus(free) {
			d.marg = append(d.marg, margVar{name: x, idx: acc.IndexOf(x)})
		}
		d.outProj = data.MustProjector(acc, free)
		v.deltas[rname] = d
	}
	m.order = append(m.order, v)
	return v
}

// connectedComponents groups relations connected by variables outside
// fixed.
func connectedComponents(rels []query.RelDef, fixed data.Schema) [][]query.RelDef {
	parent := make([]int, len(rels))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	byVar := make(map[string]int)
	for i, r := range rels {
		for _, v := range r.Schema {
			if fixed.Contains(v) {
				continue
			}
			if j, ok := byVar[v]; ok {
				parent[find(i)] = find(j)
			} else {
				byVar[v] = i
			}
		}
	}
	groups := make(map[int][]query.RelDef)
	var roots []int
	for i, r := range rels {
		root := find(i)
		if _, ok := groups[root]; !ok {
			roots = append(roots, root)
		}
		groups[root] = append(groups[root], r)
	}
	out := make([][]query.RelDef, 0, len(roots))
	for _, r := range roots {
		out = append(out, groups[r])
	}
	return out
}

// Load installs the initial contents of a relation.
func (m *Recursive[P]) Load(rel string, r *data.Relation[P]) error {
	rd, ok := m.q.Rel(rel)
	if !ok {
		return fmt.Errorf("ivm: unknown relation %q", rel)
	}
	if !r.Schema().SameSet(rd.Schema) {
		return fmt.Errorf("ivm: relation %q schema %v does not match %v", rel, r.Schema(), rd.Schema)
	}
	m.bases[rel] = r
	return nil
}

// Init evaluates every view of the hierarchy from the loaded relations and
// registers probe indexes.
func (m *Recursive[P]) Init() error {
	for _, v := range m.order {
		var inputs []*data.Relation[P]
		var vars data.Schema
		for _, name := range v.rels {
			rd, _ := m.q.Rel(name)
			vars = vars.Union(rd.Schema)
			base := m.bases[name]
			if base == nil {
				base = data.NewRelation(m.ring, rd.Schema)
			} else if !base.Schema().Equal(rd.Schema) {
				base = data.Project(base, rd.Schema)
			}
			inputs = append(inputs, base)
		}
		joined := data.JoinAll(inputs...)
		agg := data.MarginalizeVars(joined, vars.Minus(v.free), m.lift)
		v.rel.MergeAllIndexed(data.Project(agg, v.free))
	}
	for _, v := range m.order {
		for _, d := range v.deltas {
			for _, c := range d.comps {
				if !c.full {
					c.view.rel.EnsureIndex(c.common)
				}
			}
		}
	}
	m.bases = nil
	m.ready = true
	return nil
}

// ApplyDelta maintains every view whose relation set contains the updated
// relation. Component views never contain the updated relation, so each
// affected view's delta can be computed and merged independently.
func (m *Recursive[P]) ApplyDelta(rel string, delta *data.Relation[P]) error {
	if err := m.applyDelta(rel, delta); err != nil {
		return err
	}
	m.maybePublish()
	return nil
}

// applyDelta is ApplyDelta without the per-batch snapshot publication.
func (m *Recursive[P]) applyDelta(rel string, delta *data.Relation[P]) error {
	if !m.ready {
		return fmt.Errorf("ivm: ApplyDelta before Init")
	}
	rd, ok := m.q.Rel(rel)
	if !ok {
		return fmt.Errorf("ivm: unknown relation %q", rel)
	}
	if !m.updatable[rel] {
		return fmt.Errorf("ivm: relation %q is not updatable", rel)
	}
	if !delta.Schema().SameSet(rd.Schema) {
		return fmt.Errorf("ivm: delta schema %v does not match %v", delta.Schema(), rd.Schema)
	}
	if !delta.Schema().Equal(rd.Schema) {
		delta = data.Project(delta, rd.Schema)
	}
	for _, v := range m.affected[rel] {
		dv := m.viewDelta(v, rel, rd, delta)
		v.rel.MergeAllIndexed(dv)
	}
	return nil
}

// viewDelta computes δ_rel V for one view.
func (m *Recursive[P]) viewDelta(v *recView[P], rel string, rd query.RelDef, delta *data.Relation[P]) *data.Relation[P] {
	if len(v.rels) == 1 {
		agg := data.MarginalizeVars(delta, rd.Schema.Minus(v.free), m.lift)
		return data.Project(agg, v.free)
	}
	d := v.deltas[rel]
	items := m.items[:0]
	delta.IterateEntries(func(en *data.Entry[P]) bool {
		items = append(items, workItem[P]{t: en.Tuple, p: &en.Payload})
		return true
	})
	spare := m.spare
	if m.prods.r == nil {
		m.prods = newProdBuf[P](m.ring)
	}
	m.prods.reset()
	for _, c := range d.comps {
		if len(items) == 0 {
			break
		}
		next := spare[:0]
		if c.full {
			for _, it := range items {
				if en := c.view.rel.LookupProjected(c.probeProj, it.t); en != nil {
					next = append(next, workItem[P]{t: it.t, p: m.prods.product(it.p, &en.Payload)})
				}
			}
		} else {
			ix := c.view.rel.EnsureIndex(c.common)
			extraLen := c.extraProj.Len()
			for _, it := range items {
				m.keyBuf = c.probeProj.AppendKey(m.keyBuf[:0], it.t)
				for en := range ix.ProbeBytes(m.keyBuf).All() {
					tt := make(data.Tuple, 0, len(it.t)+extraLen)
					tt = append(tt, it.t...)
					tt = c.extraProj.AppendTo(tt, en.Tuple)
					next = append(next, workItem[P]{t: tt, p: m.prods.product(it.p, &en.Payload)})
				}
			}
		}
		items, spare = next, items
	}
	m.items, m.spare = items, spare
	out := data.NewRelation(m.ring, v.free)
	out.Reserve(len(items))
	timed := len(d.marg) > 0 && d.fuse.eligible(m.prods.mut, len(items))
	var start time.Time
	if timed {
		start = time.Now()
		if d.fuse.chooseFused() {
			if d.liftFn == nil {
				d.liftFn = func(t data.Tuple) *P {
					lp := m.lift(d.marg[0].name, t[d.marg[0].idx])
					for _, mv := range d.marg[1:] {
						lp = m.ring.Mul(lp, m.lift(mv.name, t[mv.idx]))
					}
					m.liftScratch = lp
					return &m.liftScratch
				}
			}
			distinct := d.fuse.run(m.prods.mut, items, d.outProj, out, d.liftFn)
			d.fuse.noteCost(true, len(items), time.Since(start))
			d.fuse.note(len(items), distinct)
			return out
		}
	}
	for _, it := range items {
		if len(d.marg) > 0 {
			lp := m.lift(d.marg[0].name, it.t[d.marg[0].idx])
			for _, mv := range d.marg[1:] {
				lp = m.ring.Mul(lp, m.lift(mv.name, it.t[mv.idx]))
			}
			out.MergeMulProjected(d.outProj, it.t, it.p, &lp)
		} else {
			out.MergeProjected(d.outProj, it.t, *it.p)
		}
	}
	if timed {
		d.fuse.noteCost(false, len(items), time.Since(start))
	}
	if len(d.marg) > 0 {
		d.fuse.note(len(items), out.Len())
	}
	return out
}

// Result returns the root view as a live handle; see the Maintainer
// contract — concurrent readers must go through Snapshot.
func (m *Recursive[P]) Result() *data.Relation[P] { return m.root.rel.Relation }

// ViewCount reports the number of materialized views in the hierarchy.
func (m *Recursive[P]) ViewCount() int { return len(m.views) }

// MemoryBytes estimates the footprint of all materialized views.
func (m *Recursive[P]) MemoryBytes() int {
	total := 0
	for _, v := range m.order {
		total += relationBytes(v.rel.Relation)
	}
	return total
}
