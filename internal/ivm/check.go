package ivm

import (
	"fmt"

	"fivm/internal/data"
	"fivm/internal/viewtree"
)

// CheckConsistency verifies every materialized view against a from-scratch
// evaluation over the given base relation contents, comparing payloads with
// eq. It is a debugging and testing aid: after any sequence of updates, the
// incremental state must equal the non-incremental one (Section 4's
// correctness invariant).
func (e *Engine[P]) CheckConsistency(bases map[string]*data.Relation[P], eq func(a, b P) bool) error {
	// Rebuild trackers' state is not needed: indicator contents derive from
	// bases directly during evaluation.
	saved := e.bases
	e.bases = bases
	defer func() { e.bases = saved }()

	var errs []error
	var eval func(n *viewtree.Node) *data.Relation[P]
	eval = func(n *viewtree.Node) *data.Relation[P] {
		fresh := e.evalFromChildren(n, eval)
		if v, ok := e.views[n]; ok {
			if !v.Relation.Equal(fresh, eq) {
				errs = append(errs, fmt.Errorf("view %s inconsistent:\n incremental %v\n fresh       %v",
					n.Name(), v.Relation, fresh))
			}
		}
		return fresh
	}
	eval(e.root)
	if len(errs) > 0 {
		return fmt.Errorf("ivm: %d inconsistent views; first: %w", len(errs), errs[0])
	}
	return nil
}
