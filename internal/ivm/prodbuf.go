package ivm

import "fivm/internal/ring"

// prodBuf is the append-only product-slot buffer backing the payloads of
// join-extended work items, shared by the engine's delta plans and the
// recursive maintainer's view deltas.
//
// Invariants: slots are append-only for the lifetime of one propagation
// call (never truncated or overwritten while work items may reference
// them), and reset only between calls, when all referencing work items are
// dead; slot storage is then reused by MulInto. The identity short-circuit
// hands back an operand's own pointer — safe because work-item payloads are
// only ever read.
type prodBuf[P any] struct {
	r     ring.Ring[P]
	mut   ring.Mutable[P] // non-nil when the ring supports in-place ops
	slots []P
}

func newProdBuf[P any](r ring.Ring[P]) prodBuf[P] {
	return prodBuf[P]{r: r, mut: ring.MutableOf(r)}
}

// reset recycles the buffer for a new propagation call.
func (b *prodBuf[P]) reset() { b.slots = b.slots[:0] }

// product returns a pointer to *a * *pay: one of the operands when the
// other is the multiplicative identity (as immutable Mul's alias fast path
// does), otherwise a fresh slot computed with reused storage.
func (b *prodBuf[P]) product(a, pay *P) *P {
	if b.mut != nil {
		if b.mut.IsOne(a) {
			return pay
		}
		if b.mut.IsOne(pay) {
			return a
		}
	}
	if len(b.slots) < cap(b.slots) {
		b.slots = b.slots[:len(b.slots)+1]
	} else {
		var zero P
		b.slots = append(b.slots, zero)
	}
	slot := &b.slots[len(b.slots)-1]
	if b.mut != nil {
		b.mut.MulInto(slot, a, pay)
	} else {
		*slot = b.r.Mul(*a, *pay)
	}
	return slot
}
