package ivm

import (
	"fivm/internal/data"
	"fivm/internal/query"
	"fivm/internal/ring"
	"fivm/internal/viewtree"
	"fivm/internal/vorder"
)

// evalTree evaluates a view tree bottom-up over the given base relations
// (missing relations are empty), applying the lifting at every bound
// marginalization. It is the non-incremental evaluation of Section 3, used
// for initialization, for the re-evaluation baseline, and as the ground
// truth in differential tests.
func evalTree[P any](root *viewtree.Node, q query.Query, r ring.Ring[P], lift data.LiftFunc[P], bases map[string]*data.Relation[P]) *data.Relation[P] {
	return evalTreeSubst(root, q, r, lift, bases, "", nil)
}

// evalTreeSubst evaluates the tree with the leaf of relation subst replaced
// by the given relation — the on-the-fly delta query evaluation that
// first-order IVM performs per update.
func evalTreeSubst[P any](root *viewtree.Node, q query.Query, r ring.Ring[P], lift data.LiftFunc[P], bases map[string]*data.Relation[P], subst string, substRel *data.Relation[P]) *data.Relation[P] {
	var eval func(n *viewtree.Node) *data.Relation[P]
	eval = func(n *viewtree.Node) *data.Relation[P] {
		if n.IsLeaf() {
			var src *data.Relation[P]
			if n.Rel == subst && !n.Indicator {
				src = substRel
			} else {
				src = bases[n.Rel]
			}
			rd, _ := q.Rel(n.Rel)
			if src == nil {
				return data.NewRelation(r, rd.Schema)
			}
			if n.Indicator {
				// Build the indicator contents from the base relation.
				out := data.NewRelation(r, n.Keys)
				one := r.One()
				proj := data.MustProjector(src.Schema(), n.Keys)
				src.Iterate(func(t data.Tuple, _ P) bool {
					out.Set(proj.Apply(t), one)
					return true
				})
				return out
			}
			if src.Schema().Equal(rd.Schema) {
				return src
			}
			return data.Project(src, rd.Schema)
		}
		rels := make([]*data.Relation[P], 0, len(n.Children))
		for _, c := range n.Children {
			rels = append(rels, eval(c))
		}
		joined := data.JoinAll(rels...)
		agg := data.MarginalizeVars(joined, joined.Schema().Intersect(n.Marg), lift)
		return data.Project(agg, n.Keys)
	}
	return eval(root)
}

// buildTree prepares a variable order and constructs the collapsed view
// tree for a query; shared by strategy constructors.
func buildTree(q query.Query, o *vorder.Order, compose bool) (*viewtree.Node, error) {
	if o == nil {
		// Self-plan: no statistics are available at this layer, so the
		// optimizer ranks candidates structurally (see vorder.Choose).
		var err error
		if o, err = vorder.Choose(q, vorder.ChooseOptions{}); err != nil {
			return nil, err
		}
	}
	if err := o.Prepare(q); err != nil {
		return nil, err
	}
	root, err := viewtree.Build(o, q)
	if err != nil {
		return nil, err
	}
	root = viewtree.CollapseIdentical(root)
	if compose {
		root = viewtree.ComposeChains(root)
	}
	return root, nil
}
