package ivm

import (
	"math/rand"
	"testing"

	"fivm/internal/data"
	"fivm/internal/query"
	"fivm/internal/ring"
	"fivm/internal/vorder"
)

// triangleStats seeds wide-variable statistics that make the pairwise join
// view (S⋈T) estimate far larger than the base relations — the shape under
// which inline computation beats storage.
func triangleStats(card, dom int) *data.Stats {
	st := data.NewStats()
	q := triangleQuery()
	for _, rd := range q.Rels {
		rs := st.Rel(rd.Name, rd.Schema)
		for i := 0; i < card; i++ {
			rs.ObserveInsert(data.Ints(int64(i%dom), int64((i*7)%dom)))
		}
		rs.DeltaTuples = int64(card)
	}
	return st
}

// TestCostMaterializeDemotesTriangleView checks that the cost policy drops
// the quadratic pairwise view on the triangle while a plain engine keeps it,
// and that both engines maintain byte-identical results through a random
// insert/delete stream — the inline plan expansion must be exact.
func TestCostMaterializeDemotesTriangleView(t *testing.T) {
	q := triangleQuery()
	st := triangleStats(3000, 400)

	plain, err := New[int64](q, triangleOrder(), ring.Int{}, countLift, Options[int64]{})
	if err != nil {
		t.Fatal(err)
	}
	costed, err := New[int64](q, triangleOrder(), ring.Int{}, countLift,
		Options[int64]{CostMaterialize: true, Stats: st})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Init(); err != nil {
		t.Fatal(err)
	}
	if err := costed.Init(); err != nil {
		t.Fatal(err)
	}
	if plain.ViewCount() <= costed.ViewCount() {
		t.Fatalf("cost policy did not demote: plain %d views, costed %d", plain.ViewCount(), costed.ViewCount())
	}

	rng := rand.New(rand.NewSource(99))
	rels := q.RelNames()
	for step := 0; step < 40; step++ {
		rel := rels[rng.Intn(len(rels))]
		rd, _ := q.Rel(rel)
		d := randomDelta(rng, rd.Schema, 5, 1+rng.Intn(4))
		if err := plain.ApplyDelta(rel, d.Clone()); err != nil {
			t.Fatal(err)
		}
		if err := costed.ApplyDelta(rel, d); err != nil {
			t.Fatal(err)
		}
		if got, want := costed.Result().String(), plain.Result().String(); got != want {
			t.Fatalf("step %d: costed %s vs plain %s", step, got, want)
		}
	}
}

// TestCostMaterializeReducesTriangleMemory loads a realistic triangle
// database and checks the demoted engine holds materially less state.
func TestCostMaterializeReducesTriangleMemory(t *testing.T) {
	q := triangleQuery()
	rng := rand.New(rand.NewSource(5))
	mkBase := func(schema data.Schema) *data.Relation[int64] {
		r := data.NewRelation[int64](ring.Int{}, schema)
		for i := 0; i < 2000; i++ {
			r.Merge(data.Ints(int64(rng.Intn(120)), int64(rng.Intn(120))), 1)
		}
		return r
	}
	bases := map[string]*data.Relation[int64]{}
	for _, rd := range q.Rels {
		bases[rd.Name] = mkBase(rd.Schema)
	}
	st := data.NewStats()
	for rel, b := range bases {
		data.ObserveRelation(st, rel, b)
		st.Rel(rel, b.Schema()).DeltaTuples = int64(b.Len())
	}

	load := func(opts Options[int64]) *Engine[int64] {
		e, err := New[int64](q, triangleOrder(), ring.Int{}, countLift, opts)
		if err != nil {
			t.Fatal(err)
		}
		for rel, b := range bases {
			if err := e.Load(rel, b.Clone()); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Init(); err != nil {
			t.Fatal(err)
		}
		return e
	}
	plain := load(Options[int64]{})
	costed := load(Options[int64]{CostMaterialize: true, Stats: st})
	if got, want := costed.Result().String(), plain.Result().String(); got != want {
		t.Fatalf("results diverge: %s vs %s", got, want)
	}
	if cm, pm := costed.MemoryBytes(), plain.MemoryBytes(); cm >= pm {
		t.Fatalf("cost policy did not reduce memory: %d vs %d", cm, pm)
	}
	// Without caller statistics the decision defers to Init and must be made
	// from the loaded data, not structural defaults: same demotion, same
	// result.
	owned := load(Options[int64]{CostMaterialize: true})
	if got, want := owned.Result().String(), plain.Result().String(); got != want {
		t.Fatalf("deferred-plan results diverge: %s vs %s", got, want)
	}
	if om, pm := owned.MemoryBytes(), plain.MemoryBytes(); om >= pm {
		t.Fatalf("deferred cost policy did not reduce memory: %d vs %d", om, pm)
	}
}

// TestAdaptiveReoptimizationMigrates drives an adaptive engine through a
// stream whose statistics drift hard (one relation balloons), checks that it
// re-plans at least once, and that its result stays byte-identical to a
// static reference engine throughout.
func TestAdaptiveReoptimizationMigrates(t *testing.T) {
	q := triangleQuery()
	// Start from an order that is fine while every domain is tiny but bad
	// once C gets wide: C(A(B)) stores the pairwise R⋈S view keyed [C,A].
	badStart := mustOrderCAB
	adaptive, err := New[int64](q, badStart(), ring.Int{}, countLift,
		Options[int64]{AutoReoptimize: true, ReoptEvery: 8, DriftFactor: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New[int64](q, badStart(), ring.Int{}, countLift, Options[int64]{})
	if err != nil {
		t.Fatal(err)
	}
	if err := adaptive.Init(); err != nil {
		t.Fatal(err)
	}
	if err := ref.Init(); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(31))
	apply := func(rel string, wideC bool) {
		rd, _ := q.Rel(rel)
		d := data.NewRelation[int64](ring.Int{}, rd.Schema)
		for i := 0; i < 6; i++ {
			a, b := int64(rng.Intn(4)), int64(rng.Intn(4))
			if wideC {
				// Column C of S and T draws from a wide domain.
				wide := int64(rng.Intn(500))
				switch rel {
				case "S": // (B, C)
					b = wide
				case "T": // (C, A)
					a = wide
				}
			}
			d.Merge(data.Ints(a, b), 1)
		}
		if err := adaptive.ApplyDelta(rel, d.Clone()); err != nil {
			t.Fatal(err)
		}
		if err := ref.ApplyDelta(rel, d); err != nil {
			t.Fatal(err)
		}
		if got, want := adaptive.Result().String(), ref.Result().String(); got != want {
			t.Fatalf("adaptive %s vs ref %s", got, want)
		}
	}
	// Phase 1: uniform tiny updates.
	for i := 0; i < 16; i++ {
		apply(q.RelNames()[i%3], false)
	}
	// Phase 2: S and T balloon with a wide C domain; the [C,*]-keyed view of
	// the starting order explodes relative to the plan-time snapshot and a
	// rotation that marginalizes C deepest becomes clearly cheaper.
	for i := 0; i < 120; i++ {
		apply(q.RelNames()[1+i%2], true) // S, T
	}
	if adaptive.Replans() == 0 {
		t.Fatal("no re-plan despite hard statistics drift")
	}
	// Post-migration maintenance must remain correct for every relation.
	for i := 0; i < 24; i++ {
		apply(q.RelNames()[i%3], i%2 == 0)
	}
}

func mustOrderCAB() *vorder.Order {
	return vorder.MustNew(vorder.V("C", vorder.V("A", vorder.V("B"))))
}

// TestAdaptiveRejectsIncompatibleOptions pins the constructor guard.
func TestAdaptiveRejectsIncompatibleOptions(t *testing.T) {
	q := triangleQuery()
	if _, err := New[int64](q, triangleOrder(), ring.Int{}, countLift,
		Options[int64]{AutoReoptimize: true, Indicators: true}); err == nil {
		t.Fatal("AutoReoptimize+Indicators accepted")
	}
}

// TestReplanPartialReuseKeepsSubtreeViews pins the migration bug where a
// reused view's subtree was skipped entirely: descendants of an unchanged
// view (its leaves above all) must still be installed in the new plan's
// view map, or delta plans panic on missing siblings / silently stop
// maintaining leaves. The query has two components so one subtree's
// signature survives while the other changes.
func TestReplanPartialReuseKeepsSubtreeViews(t *testing.T) {
	q := query.MustNew("two", nil,
		query.RelDef{Name: "R", Schema: data.NewSchema("A", "B")},
		query.RelDef{Name: "S", Schema: data.NewSchema("C", "D")},
		query.RelDef{Name: "T", Schema: data.NewSchema("C", "E")},
	)
	mkOrder := func(first, second string) *vorder.Order {
		return vorder.MustNew(vorder.Chain(first, second), vorder.V("C", vorder.V("D"), vorder.V("E")))
	}
	adaptive, err := New[int64](q, mkOrder("A", "B"), ring.Int{}, countLift,
		Options[int64]{AutoReoptimize: true})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New[int64](q, mkOrder("A", "B"), ring.Int{}, countLift, Options[int64]{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for _, rd := range q.Rels {
		base := randomDelta(rng, rd.Schema, 3, 6)
		if err := adaptive.Load(rd.Name, base.Clone()); err != nil {
			t.Fatal(err)
		}
		if err := ref.Load(rd.Name, base); err != nil {
			t.Fatal(err)
		}
	}
	if err := adaptive.Init(); err != nil {
		t.Fatal(err)
	}
	if err := ref.Init(); err != nil {
		t.Fatal(err)
	}

	// Force a migration that flips only the R component; the C component's
	// whole subtree signature is unchanged and must be transferred with its
	// descendants intact.
	if err := adaptive.replan(mkOrder("B", "A")); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 10; step++ {
		for _, rd := range q.Rels {
			d := randomDelta(rng, rd.Schema, 3, 2)
			if err := adaptive.ApplyDelta(rd.Name, d.Clone()); err != nil {
				t.Fatal(err)
			}
			if err := ref.ApplyDelta(rd.Name, d); err != nil {
				t.Fatal(err)
			}
		}
		if got, want := adaptive.Result().String(), ref.Result().String(); got != want {
			t.Fatalf("step %d: migrated %s vs ref %s", step, got, want)
		}
	}
	// And a second migration must start from healthy harvested leaves.
	if err := adaptive.replan(mkOrder("A", "B")); err != nil {
		t.Fatal(err)
	}
	d := randomDelta(rng, data.NewSchema("C", "D"), 3, 3)
	if err := adaptive.ApplyDelta("S", d.Clone()); err != nil {
		t.Fatal(err)
	}
	if err := ref.ApplyDelta("S", d); err != nil {
		t.Fatal(err)
	}
	if got, want := adaptive.Result().String(), ref.Result().String(); got != want {
		t.Fatalf("after second migration: %s vs %s", got, want)
	}
}
