package ivm

import (
	"fmt"

	"fivm/internal/data"
	"fivm/internal/query"
	"fivm/internal/ring"
	"fivm/internal/viewtree"
	"fivm/internal/vorder"
)

// ReEval is the re-evaluation baseline (F-RE in the paper's Appendix C
// table): it stores only the input relations and recomputes the query
// result from scratch on every update, using the same factorized evaluation
// over the view tree as F-IVM (so the comparison isolates incrementality,
// not evaluation quality).
type ReEval[P any] struct {
	q      query.Query
	ring   ring.Ring[P]
	lift   data.LiftFunc[P]
	root   *viewtree.Node
	bases  map[string]*data.Relation[P]
	result *data.Relation[P]
	pub    publisher[P]
	// seal caches the snapshot of the current result relation, which is
	// replaced (never mutated) by each recomputation.
	seal sealCache[P]
}

// NewReEval builds a re-evaluation maintainer over the given variable order.
func NewReEval[P any](q query.Query, o *vorder.Order, r ring.Ring[P], lift data.LiftFunc[P]) (*ReEval[P], error) {
	root, err := buildTree(q, o, true)
	if err != nil {
		return nil, err
	}
	return &ReEval[P]{q: q, ring: r, lift: lift, root: root, bases: make(map[string]*data.Relation[P])}, nil
}

// Load installs the initial contents of a relation.
func (m *ReEval[P]) Load(rel string, r *data.Relation[P]) error {
	if _, ok := m.q.Rel(rel); !ok {
		return fmt.Errorf("ivm: unknown relation %q", rel)
	}
	m.bases[rel] = r.Clone()
	return nil
}

// Init computes the initial result.
func (m *ReEval[P]) Init() error {
	m.result = evalTree(m.root, m.q, m.ring, m.lift, m.bases)
	return nil
}

// absorb merges an update into the stored base relation.
func (m *ReEval[P]) absorb(rel string, delta *data.Relation[P]) error {
	rd, ok := m.q.Rel(rel)
	if !ok {
		return fmt.Errorf("ivm: unknown relation %q", rel)
	}
	base := m.bases[rel]
	if base == nil {
		base = data.NewRelation(m.ring, rd.Schema)
		m.bases[rel] = base
	}
	if base.Schema().Equal(delta.Schema()) {
		base.MergeAll(delta)
	} else {
		base.MergeAll(data.Project(delta, base.Schema()))
	}
	return nil
}

// ApplyDelta merges the update into the base relation and recomputes the
// result from scratch.
func (m *ReEval[P]) ApplyDelta(rel string, delta *data.Relation[P]) error {
	if err := m.absorb(rel, delta); err != nil {
		return err
	}
	m.result = evalTree(m.root, m.q, m.ring, m.lift, m.bases)
	m.maybePublish()
	return nil
}

// Result returns the last computed query result as a live handle; see the
// Maintainer contract — concurrent readers must go through Snapshot.
func (m *ReEval[P]) Result() *data.Relation[P] {
	if m.result == nil {
		return data.NewRelation(m.ring, m.root.Keys)
	}
	return m.result
}

// ViewCount reports the stored relations plus the result.
func (m *ReEval[P]) ViewCount() int { return len(m.bases) + 1 }

// MemoryBytes estimates the footprint of the stored relations and result.
func (m *ReEval[P]) MemoryBytes() int {
	total := 0
	for _, b := range m.bases {
		total += relationBytes(b)
	}
	if m.result != nil {
		total += relationBytes(m.result)
	}
	return total
}
