package ivm

import (
	"fmt"

	"fivm/internal/data"
	"fivm/internal/datasets"
	"fivm/internal/query"
	"fivm/internal/ring"
)

// NewTriggers builds the trigger dispatcher for a maintainer. The payload
// function maps each inserted tuple to its payload (usually the ring's One).
func NewTriggers[P any](m Maintainer[P], q query.Query, r ring.Ring[P], payload func(rel string, t data.Tuple) P) *TriggerSet[P] {
	return &TriggerSet[P]{m: m, q: q, ring: r, payload: payload}
}

// TriggerSet implements the paper's trigger interface: per updatable
// relation, a procedure that converts incoming tuple batches into ring
// deltas and drives maintenance, with deletions encoded as additively
// inverted payloads. It dispatches plain and windowed stream batches.
type TriggerSet[P any] struct {
	m       Maintainer[P]
	q       query.Query
	ring    ring.Ring[P]
	payload func(rel string, t data.Tuple) P
}

// delta builds the ring delta of a batch, negating payloads for deletions.
func (ts *TriggerSet[P]) delta(rel string, tuples []data.Tuple, negate bool) (*data.Relation[P], error) {
	rd, ok := ts.q.Rel(rel)
	if !ok {
		return nil, fmt.Errorf("ivm: unknown relation %q", rel)
	}
	d := data.NewRelation[P](ts.ring, rd.Schema)
	for _, t := range tuples {
		p := ts.payload(rel, t)
		if negate {
			p = ts.ring.Neg(p)
		}
		d.Merge(t, p)
	}
	return d, nil
}

// Insert fires the insert trigger for one relation.
func (ts *TriggerSet[P]) Insert(rel string, tuples ...data.Tuple) error {
	d, err := ts.delta(rel, tuples, false)
	if err != nil {
		return err
	}
	return ts.m.ApplyDelta(rel, d)
}

// Delete fires the delete trigger for one relation.
func (ts *TriggerSet[P]) Delete(rel string, tuples ...data.Tuple) error {
	d, err := ts.delta(rel, tuples, true)
	if err != nil {
		return err
	}
	return ts.m.ApplyDelta(rel, d)
}

// ApplyBatch dispatches one plain stream batch (inserts).
func (ts *TriggerSet[P]) ApplyBatch(b datasets.Batch) error {
	return ts.Insert(b.Rel, b.Tuples...)
}

// ApplyWindowed dispatches one windowed batch, negating deletions.
func (ts *TriggerSet[P]) ApplyWindowed(b datasets.WindowedBatch) error {
	if b.Delete {
		return ts.Delete(b.Rel, b.Tuples...)
	}
	return ts.Insert(b.Rel, b.Tuples...)
}

// RunStream applies a whole stream of batches.
func (ts *TriggerSet[P]) RunStream(stream []datasets.Batch) error {
	for _, b := range stream {
		if err := ts.ApplyBatch(b); err != nil {
			return err
		}
	}
	return nil
}

// RunWindowed applies a whole windowed stream.
func (ts *TriggerSet[P]) RunWindowed(stream []datasets.WindowedBatch) error {
	for _, b := range stream {
		if err := ts.ApplyWindowed(b); err != nil {
			return err
		}
	}
	return nil
}

// Maintainer returns the wrapped maintainer.
func (ts *TriggerSet[P]) Maintainer() Maintainer[P] { return ts.m }
