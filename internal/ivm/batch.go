package ivm

import (
	"fivm/internal/data"
)

// NamedDelta pairs an updated relation's name with its delta, one element of
// a batched update. Deletions are encoded, as everywhere, by additively
// inverted payloads.
type NamedDelta[P any] struct {
	Rel   string
	Delta *data.Relation[P]
}

// coalesceBatch groups a batch by relation, merging every delta of the same
// relation into one, preserving first-appearance order. Because payload
// rings are distributive and the maintained state depends only on the final
// database (not on update interleaving), propagating the merged delta once
// per relation is exact — each leaf-to-root plan then runs once per batch
// instead of once per update. The input deltas are never mutated: a combined
// relation is materialized only for relations that appear more than once.
func coalesceBatch[P any](batch []NamedDelta[P]) []NamedDelta[P] {
	// Drop nil deltas up front, so they are no-ops for every strategy and
	// batch shape rather than reaching a maintainer's single-delta path.
	for _, nd := range batch {
		if nd.Delta == nil {
			f := make([]NamedDelta[P], 0, len(batch))
			for _, nd := range batch {
				if nd.Delta != nil {
					f = append(f, nd)
				}
			}
			batch = f
			break
		}
	}
	if len(batch) < 2 {
		return batch
	}
	dup := false
	seen := make(map[string]struct{}, len(batch))
	for _, nd := range batch {
		if _, ok := seen[nd.Rel]; ok {
			dup = true
			break
		}
		seen[nd.Rel] = struct{}{}
	}
	if !dup {
		return batch
	}
	out := make([]NamedDelta[P], 0, len(seen))
	pos := make(map[string]int, len(seen))
	owned := make(map[string]bool, len(seen))
	for _, nd := range batch {
		if nd.Delta == nil {
			continue
		}
		i, ok := pos[nd.Rel]
		if !ok {
			pos[nd.Rel] = len(out)
			out = append(out, nd)
			continue
		}
		cur := out[i].Delta
		if !owned[nd.Rel] {
			// Copy-on-write: the first delta belongs to the caller.
			c := data.NewRelation(cur.Ring(), cur.Schema())
			c.Reserve(cur.Len() + nd.Delta.Len())
			c.MergeAll(cur)
			out[i].Delta = c
			owned[nd.Rel] = true
			cur = c
		}
		if cur.Schema().Equal(nd.Delta.Schema()) {
			cur.MergeAll(nd.Delta)
		} else {
			cur.MergeAll(data.Project(nd.Delta, cur.Schema()))
		}
	}
	return out
}

// ApplyDeltas maintains the result under a batch of updates to any mix of
// relations. Deltas to the same relation are merged and each affected
// leaf-to-root plan is traversed once, so a batch of k single-tuple updates
// to one relation costs one propagation instead of k. With publication
// enabled, one snapshot epoch is published for the whole batch.
func (e *Engine[P]) ApplyDeltas(batch []NamedDelta[P]) error {
	for _, nd := range coalesceBatch(batch) {
		if err := e.applyDelta(nd.Rel, nd.Delta); err != nil {
			return err
		}
	}
	e.maybePublish()
	return nil
}

// ApplyDeltas evaluates one first-order delta query per distinct relation in
// the batch, publishing one snapshot epoch for the whole batch.
func (m *FirstOrder[P]) ApplyDeltas(batch []NamedDelta[P]) error {
	for _, nd := range coalesceBatch(batch) {
		if err := m.applyDelta(nd.Rel, nd.Delta); err != nil {
			return err
		}
	}
	m.maybePublish()
	return nil
}

// ApplyDeltas maintains every affected view hierarchy once per distinct
// relation in the batch, publishing one snapshot epoch for the whole batch.
func (m *Recursive[P]) ApplyDeltas(batch []NamedDelta[P]) error {
	for _, nd := range coalesceBatch(batch) {
		if err := m.applyDelta(nd.Rel, nd.Delta); err != nil {
			return err
		}
	}
	m.maybePublish()
	return nil
}

// ApplyDeltas merges the whole batch into the base relations and recomputes
// the result once, instead of once per update.
func (m *ReEval[P]) ApplyDeltas(batch []NamedDelta[P]) error {
	if len(batch) == 0 {
		return nil
	}
	for _, nd := range batch {
		if nd.Delta == nil {
			continue
		}
		if err := m.absorb(nd.Rel, nd.Delta); err != nil {
			return err
		}
	}
	m.result = evalTree(m.root, m.q, m.ring, m.lift, m.bases)
	m.maybePublish()
	return nil
}

// ApplyDeltas merges the whole batch into the base relations and recomputes
// the full join once.
func (m *NaiveReEval[P]) ApplyDeltas(batch []NamedDelta[P]) error {
	if len(batch) == 0 {
		return nil
	}
	for _, nd := range batch {
		if nd.Delta == nil {
			continue
		}
		if err := m.absorb(nd.Rel, nd.Delta); err != nil {
			return err
		}
	}
	m.result = m.recompute()
	m.maybePublish()
	return nil
}

// ApplyDeltas recomputes each aggregate's delta query once per distinct
// relation in the batch, publishing one snapshot epoch for the whole batch.
func (m *MultiFirstOrder) ApplyDeltas(batch []NamedDelta[float64]) error {
	for _, nd := range coalesceBatch(batch) {
		if err := m.applyDelta(nd.Rel, nd.Delta); err != nil {
			return err
		}
	}
	m.maybePublish()
	return nil
}

// ApplyDeltas coalesces the batch once and drives every per-aggregate
// hierarchy with the merged deltas, publishing one snapshot epoch for the
// whole batch.
func (m *MultiRecursive) ApplyDeltas(batch []NamedDelta[float64]) error {
	batch = coalesceBatch(batch)
	for _, inst := range m.instances {
		for _, nd := range batch {
			if err := inst.ApplyDelta(nd.Rel, nd.Delta); err != nil {
				return err
			}
		}
	}
	m.maybePublish()
	return nil
}
