package ivm

import (
	"bytes"
	"time"

	"fivm/internal/data"
	"fivm/internal/ring"
)

// runFuser is the sorted-run accumulation engine behind fused delta
// application. A marginalizing plan step can emit many work items that
// project onto the same output key (everything distinguishing them was
// marginalized away); the unfused path pays a hash probe into the output
// relation per item. The fuser instead encodes every item's output key once,
// radix-sorts the items by key, and accumulates each equal-key run into one
// owned payload that is merged exactly once — per distinct key, not per item.
//
// Sorting is pure overhead on steps that produce mostly distinct keys, and
// even on duplicate-heavy steps it only wins when the saved hash probes cost
// more than the sort — which depends on key width, payload width, and how
// hot the scratch table is. So the gate is measured, not modeled, in two
// stages. A duplicate-rate estimate (EWMA of items in vs. distinct keys out,
// observed for free by both paths) rules out steps where sorting cannot
// possibly pay. Steps that pass it are timed: the first few qualifying
// batches alternate between the two modes, after which each batch runs the
// mode with the lower measured ns/item, re-probing the loser periodically so
// the decision tracks shifts in the data. The estimates, key arena, and
// accumulator live per step (or per recursive view delta), which are
// single-threaded by construction — the parallel maintainer gives every
// shard its own engine.
type runFuser[P any] struct {
	keys    [][]byte
	offs    []int
	arena   []byte
	acc     P
	dupEWMA float64

	// Measured merge-phase cost per work item for each mode.
	nsItemFused, nsItemUnfused float64
	fusedN, unfusedN           int
	tick                       int
}

const (
	// fuseMinItems is the batch size below which sorting cannot pay for
	// itself regardless of the duplicate rate.
	fuseMinItems = 32
	// fuseDupThreshold is the estimated duplicate-key rate below which the
	// sorted-run path is never even sampled.
	fuseDupThreshold = 0.4
	// fuseEWMAAlpha is the weight of the newest batch in the duplicate-rate
	// and cost estimates.
	fuseEWMAAlpha = 0.25
	// fuseWarmSamples is how many timed batches of each mode the gate wants
	// before trusting the cost comparison.
	fuseWarmSamples = 3
	// fuseReprobeEvery makes every n-th qualifying batch run the losing mode
	// so its cost estimate stays current (power of two).
	fuseReprobeEvery = 64
)

// eligible reports whether a batch of n work items qualifies for the timed
// fuse-vs-merge decision at all.
func (f *runFuser[P]) eligible(mut ring.Mutable[P], n int) bool {
	return mut != nil && n >= fuseMinItems && f.dupEWMA >= fuseDupThreshold
}

// chooseFused picks the mode for a qualifying batch: alternate while either
// mode lacks warm samples, then the measured winner, with a periodic probe
// of the loser.
func (f *runFuser[P]) chooseFused() bool {
	f.tick++
	if f.fusedN < fuseWarmSamples || f.unfusedN < fuseWarmSamples {
		return f.fusedN <= f.unfusedN
	}
	fusedWins := f.nsItemFused < f.nsItemUnfused
	if f.tick&(fuseReprobeEvery-1) == 0 {
		return !fusedWins
	}
	return fusedWins
}

// noteCost feeds one timed batch (n items, merge phase took elapsed) into
// the chosen mode's cost estimate.
func (f *runFuser[P]) noteCost(fused bool, n int, elapsed time.Duration) {
	c := float64(elapsed) / float64(n)
	if fused {
		if f.fusedN == 0 {
			f.nsItemFused = c
		} else {
			f.nsItemFused += fuseEWMAAlpha * (c - f.nsItemFused)
		}
		f.fusedN++
		return
	}
	if f.unfusedN == 0 {
		f.nsItemUnfused = c
	} else {
		f.nsItemUnfused += fuseEWMAAlpha * (c - f.nsItemUnfused)
	}
	f.unfusedN++
}

// note feeds one batch's observed duplicate rate (n items collapsed to
// distinct output keys) into the estimate.
func (f *runFuser[P]) note(n, distinct int) {
	if n == 0 {
		return
	}
	dup := 1 - float64(distinct)/float64(n)
	f.dupEWMA += fuseEWMAAlpha * (dup - f.dupEWMA)
}

// run sorts items by their proj-encoded output key and merges each equal-key
// run as a single accumulated payload: acc = Σ_run item.p * lift(item.t),
// built in place with the ring's mutable ops, then merged once under the
// pre-encoded key. lift must return the run item's lift product (valid until
// the next lift call). Returns the number of distinct keys merged.
func (f *runFuser[P]) run(mut ring.Mutable[P], items []workItem[P], proj data.Projector,
	out *data.Relation[P], lift func(t data.Tuple) *P) int {
	arena := f.arena[:0]
	offs := f.offs[:0]
	for _, it := range items {
		offs = append(offs, len(arena))
		arena = proj.AppendKey(arena, it.t)
	}
	offs = append(offs, len(arena))
	keys := f.keys[:0]
	for i := 0; i+1 < len(offs); i++ {
		keys = append(keys, arena[offs[i]:offs[i+1]:offs[i+1]])
	}
	f.arena, f.offs, f.keys = arena, offs, keys

	data.RadixSortKeyedBytes(keys, items)

	distinct := 0
	for i := 0; i < len(items); {
		j := i + 1
		for j < len(items) && bytes.Equal(keys[j], keys[i]) {
			j++
		}
		it := items[i]
		mut.MulInto(&f.acc, it.p, lift(it.t))
		for m := i + 1; m < j; m++ {
			it := items[m]
			mut.MulAddInto(&f.acc, it.p, lift(it.t))
		}
		out.MergeProjectedKey(keys[i], proj, it.t, &f.acc)
		distinct++
		i = j
	}
	return distinct
}
