package ivm

import (
	"math/rand"
	"runtime"
	"testing"

	"fivm/internal/data"
	"fivm/internal/ring"
)

// These tests pin the storage contract the swiss-table relation backend
// must honor: every maintenance strategy (F-IVM, 1-IVM, DBT, RE-EVAL) over
// every ring stores byte-identical results — same serialized keys, same
// payloads — no matter how its relations hash, probe, grow, or tombstone
// internally, including under 8-way sharding and across snapshot epochs.
// They double as the regression net for future storage-layer changes: run
// them under -race before trusting a new backend.

// dumpResult canonicalizes a maintained result: serialized key -> payload,
// zero payloads dropped (a strategy is free to keep or evict vanished keys).
func dumpResult[P any](r *data.Relation[P], rg ring.Ring[P]) map[string]P {
	out := map[string]P{}
	r.Iterate(func(tup data.Tuple, p P) bool {
		if !rg.IsZero(p) {
			out[string(tup.AppendKey(nil))] = p
		}
		return true
	})
	return out
}

// dumpSnapshot canonicalizes a published snapshot result the same way.
func dumpSnapshot[P any](s *data.RelationSnapshot[P], rg ring.Ring[P]) map[string]P {
	out := map[string]P{}
	s.Iterate(func(tup data.Tuple, p P) bool {
		if !rg.IsZero(p) {
			out[string(tup.AppendKey(nil))] = p
		}
		return true
	})
	return out
}

func sameDump[P any](a, b map[string]P, eq func(a, b P) bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || !eq(av, bv) {
			return false
		}
	}
	return true
}

// storageStrategies builds one maintainer per strategy family, all over the
// paper query. The parallel entry wraps the factored engine in an 8-shard
// Parallel regardless of GOMAXPROCS — the scheduling cap must not change
// results.
func storageStrategies[P any](t *testing.T, rg ring.Ring[P], lift data.LiftFunc[P]) (names []string, ms []Maintainer[P]) {
	t.Helper()
	q := paperQuery()
	add := func(name string, m Maintainer[P], err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := m.Init(); err != nil {
			t.Fatalf("%s init: %v", name, err)
		}
		m.Snapshot() // enable epoch publication from the start
		names = append(names, name)
		ms = append(ms, m)
	}

	e, err := New[P](q, paperOrder(), rg, lift, Options[P]{})
	add("F-IVM", e, err)
	fo, err := NewFirstOrder[P](q, paperOrder(), rg, lift)
	add("1-IVM", fo, err)
	rec, err := NewRecursive[P](q, rg, lift, nil)
	add("DBT", rec, err)
	add("RE-EVAL", NewNaiveReEval[P](q, rg, lift), nil)
	par, err := newParallel[P](q, rg, 8, func() (Maintainer[P], error) {
		return New[P](q, paperOrder(), rg, lift, Options[P]{})
	})
	add("F-IVM x8", par, err)
	return names, ms
}

// driveStorageProperty streams random mixed insert/delete batches through
// every strategy and checks after each round that live results and
// published snapshots agree byte-for-byte, and that a snapshot pinned early
// still serves its original contents at the end (epoch stability while the
// writer churns and recycles chunks underneath it).
func driveStorageProperty[P any](t *testing.T, rg ring.Ring[P], lift data.LiftFunc[P],
	toP func(*data.Relation[int64]) *data.Relation[P], eq func(a, b P) bool, seed int64) {
	t.Helper()
	q := paperQuery()
	rng := rand.New(rand.NewSource(seed))
	names, ms := storageStrategies[P](t, rg, lift)

	var history []NamedDelta[P] // for later deletion via negation
	var pinned *data.RelationSnapshot[P]
	var pinnedWant map[string]P

	for round := 0; round < 24; round++ {
		var batch []NamedDelta[P]
		if len(history) > 0 && rng.Intn(3) == 0 {
			// Delete a past batch entry: additively inverted payloads.
			h := history[rng.Intn(len(history))]
			batch = append(batch, NamedDelta[P]{Rel: h.Rel, Delta: h.Delta.Negate()})
		}
		for _, rel := range q.RelNames() {
			if rng.Intn(2) == 0 {
				continue
			}
			rd, _ := q.Rel(rel)
			d := toP(randomDelta(rng, rd.Schema, 4, 1+rng.Intn(6)))
			batch = append(batch, NamedDelta[P]{Rel: rel, Delta: d})
			history = append(history, NamedDelta[P]{Rel: rel, Delta: d})
		}
		if len(batch) == 0 {
			continue
		}
		for i, m := range ms {
			if err := m.ApplyDeltas(batch); err != nil {
				t.Fatalf("round %d %s: %v", round, names[i], err)
			}
		}

		want := dumpResult(ms[0].Result(), rg)
		for i, m := range ms[1:] {
			got := dumpResult(m.Result(), rg)
			if !sameDump(want, got, eq) {
				t.Fatalf("round %d: %s result diverged from %s (%d vs %d keys)",
					round, names[i+1], names[0], len(got), len(want))
			}
		}
		for i, m := range ms {
			snap := dumpSnapshot(m.Snapshot().Result(), rg)
			if !sameDump(want, snap, eq) {
				t.Fatalf("round %d: %s snapshot diverged from live result", round, names[i])
			}
		}
		if pinned == nil && round >= 7 {
			pinned = ms[0].Snapshot().Result()
			pinnedWant = want
		}
	}

	if pinned == nil {
		t.Fatal("stream too short to pin a snapshot")
	}
	if got := dumpSnapshot(pinned, rg); !sameDump(pinnedWant, got, eq) {
		t.Fatalf("pinned snapshot mutated while writer advanced: %d vs %d keys", len(got), len(pinnedWant))
	}
}

func TestStorageDropInIntRing(t *testing.T) {
	ident := func(d *data.Relation[int64]) *data.Relation[int64] { return d }
	driveStorageProperty[int64](t, ring.Int{}, valueLift, ident, eqInt, 61)
}

func TestStorageDropInCofactorRing(t *testing.T) {
	q := paperQuery()
	vars := q.Vars()
	idx := make(map[string]int, len(vars))
	for i, v := range vars {
		idx[v] = i
	}
	cf := ring.Cofactor{}
	lift := func(v string, x data.Value) ring.Triple { return ring.LiftValue(idx[v], x.AsFloat()) }
	toTriple := func(d *data.Relation[int64]) *data.Relation[ring.Triple] {
		out := data.NewRelation[ring.Triple](cf, d.Schema())
		d.Iterate(func(tup data.Tuple, m int64) bool {
			p := cf.Zero()
			for k := int64(0); k < m; k++ {
				p = cf.Add(p, cf.One())
			}
			for k := int64(0); k > m; k-- {
				p = cf.Add(p, cf.Neg(cf.One()))
			}
			out.Merge(tup, p)
			return true
		})
		return out
	}
	eqTriple := func(a, b ring.Triple) bool { return cf.IsZero(cf.Add(a, cf.Neg(b))) }
	driveStorageProperty[ring.Triple](t, cf, lift, toTriple, eqTriple, 62)
}

// TestParallelDispatchUnderGOMAXPROCSCap pins the scheduling/layout split:
// an 8-shard parallel engine constructed while GOMAXPROCS is capped at 2
// keeps all 8 shards (data layout is config, not hardware) but gates
// in-flight shard work to the cap at Apply time — and produces the same
// bytes as every sequential strategy.
func TestParallelDispatchUnderGOMAXPROCSCap(t *testing.T) {
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)
	ident := func(d *data.Relation[int64]) *data.Relation[int64] { return d }
	driveStorageProperty[int64](t, ring.Int{}, valueLift, ident, eqInt, 63)
}
