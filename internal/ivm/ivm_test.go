package ivm

import (
	"math/rand"
	"testing"

	"fivm/internal/data"
	"fivm/internal/query"
	"fivm/internal/ring"
	"fivm/internal/viewtree"
	"fivm/internal/vorder"
)

// --- fixtures ---------------------------------------------------------------

func paperQuery(free ...string) query.Query {
	return query.MustNew("Q", data.Schema(free),
		query.RelDef{Name: "R", Schema: data.NewSchema("A", "B")},
		query.RelDef{Name: "S", Schema: data.NewSchema("A", "C", "E")},
		query.RelDef{Name: "T", Schema: data.NewSchema("C", "D")},
	)
}

func paperOrder() *vorder.Order {
	return vorder.MustNew(vorder.V("A", vorder.V("B"), vorder.V("C", vorder.V("D"), vorder.V("E"))))
}

func countLift(string, data.Value) int64 { return 1 }
func valueLift(_ string, v data.Value) int64 {
	return v.AsInt()
}

// randomDelta builds a random delta over a schema with values in [0,dom)
// and payloads in [-2,2] \ {0}.
func randomDelta(rng *rand.Rand, schema data.Schema, dom, n int) *data.Relation[int64] {
	d := data.NewRelation[int64](ring.Int{}, schema)
	for i := 0; i < n; i++ {
		t := make(data.Tuple, len(schema))
		for j := range t {
			t[j] = data.Int(int64(rng.Intn(dom)))
		}
		p := int64(rng.Intn(4) - 2)
		if p == 0 {
			p = 1
		}
		d.Merge(t, p)
	}
	return d
}

func eqInt(a, b int64) bool { return a == b }

// --- Example 4.1: hand-checked delta propagation ------------------------------

// TestExample41 reproduces paper Example 4.1: the COUNT query over Figure
// 2c's database with δT = {(c1,d1) -> -1, (c2,d2) -> 3}.
func TestExample41(t *testing.T) {
	q := paperQuery()
	e, err := New[int64](q, paperOrder(), ring.Int{}, countLift, Options[int64]{})
	if err != nil {
		t.Fatal(err)
	}

	// Figure 2c database with all payloads 1.
	load := func(name string, schema data.Schema, rows ...data.Tuple) {
		rel := data.NewRelation[int64](ring.Int{}, schema)
		for _, r := range rows {
			rel.Merge(r, 1)
		}
		if err := e.Load(name, rel); err != nil {
			t.Fatal(err)
		}
	}
	load("R", data.NewSchema("A", "B"), data.Ints(1, 1), data.Ints(1, 2), data.Ints(2, 3), data.Ints(3, 4))
	load("S", data.NewSchema("A", "C", "E"),
		data.Ints(1, 1, 1), data.Ints(1, 1, 2), data.Ints(1, 2, 3), data.Ints(2, 2, 4))
	load("T", data.NewSchema("C", "D"),
		data.Ints(1, 1), data.Ints(2, 2), data.Ints(2, 3), data.Ints(3, 4))
	if err := e.Init(); err != nil {
		t.Fatal(err)
	}

	// Figure 2d: the COUNT over D is 10.
	if p, _ := e.Result().Get(data.Tuple{}); p != 10 {
		t.Fatalf("initial count = %d, want 10", p)
	}

	// δT from Example 4.1: the root delta is +5.
	dt := data.NewRelation[int64](ring.Int{}, data.NewSchema("C", "D"))
	dt.Merge(data.Ints(1, 1), -1)
	dt.Merge(data.Ints(2, 2), 3)
	if err := e.ApplyDelta("T", dt); err != nil {
		t.Fatal(err)
	}
	if p, _ := e.Result().Get(data.Tuple{}); p != 15 {
		t.Fatalf("count after δT = %d, want 15", p)
	}
}

// --- differential tests: all strategies agree --------------------------------

type strategyFactory struct {
	name string
	make func(q query.Query, o func() *vorder.Order, lift data.LiftFunc[int64], upd []string) (Maintainer[int64], error)
}

func intStrategies() []strategyFactory {
	return []strategyFactory{
		{"F-IVM", func(q query.Query, o func() *vorder.Order, lift data.LiftFunc[int64], upd []string) (Maintainer[int64], error) {
			return New[int64](q, o(), ring.Int{}, lift, Options[int64]{Updatable: upd})
		}},
		{"F-IVM-composed", func(q query.Query, o func() *vorder.Order, lift data.LiftFunc[int64], upd []string) (Maintainer[int64], error) {
			return New[int64](q, o(), ring.Int{}, lift, Options[int64]{Updatable: upd, ComposeChains: true})
		}},
		{"1-IVM", func(q query.Query, o func() *vorder.Order, lift data.LiftFunc[int64], upd []string) (Maintainer[int64], error) {
			return NewFirstOrder[int64](q, o(), ring.Int{}, lift)
		}},
		{"DBT", func(q query.Query, o func() *vorder.Order, lift data.LiftFunc[int64], upd []string) (Maintainer[int64], error) {
			return NewRecursive[int64](q, ring.Int{}, lift, upd)
		}},
		{"RE-EVAL", func(q query.Query, o func() *vorder.Order, lift data.LiftFunc[int64], upd []string) (Maintainer[int64], error) {
			return NewReEval[int64](q, o(), ring.Int{}, lift)
		}},
	}
}

// runDifferential drives all strategies through the same random stream and
// checks they agree with re-evaluation after every update.
func runDifferential(t *testing.T, q query.Query, mkOrder func() *vorder.Order, lift data.LiftFunc[int64], upd []string, seed int64, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))

	var ms []Maintainer[int64]
	var names []string
	for _, f := range intStrategies() {
		m, err := f.make(q, mkOrder, lift, upd)
		if err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		ms = append(ms, m)
		names = append(names, f.name)
	}
	// Initial load: random contents per relation.
	for _, rd := range q.Rels {
		base := randomDelta(rng, rd.Schema, 4, rng.Intn(8))
		for _, m := range ms {
			if err := m.Load(rd.Name, base.Clone()); err != nil {
				t.Fatalf("load: %v", err)
			}
		}
	}
	for i, m := range ms {
		if err := m.Init(); err != nil {
			t.Fatalf("%s init: %v", names[i], err)
		}
	}

	updSet := upd
	if len(updSet) == 0 {
		updSet = q.RelNames()
	}
	ref := ms[len(ms)-1] // RE-EVAL is ground truth
	for step := 0; step < steps; step++ {
		rel := updSet[rng.Intn(len(updSet))]
		rd, _ := q.Rel(rel)
		delta := randomDelta(rng, rd.Schema, 4, 1+rng.Intn(3))
		for i, m := range ms {
			if err := m.ApplyDelta(rel, delta.Clone()); err != nil {
				t.Fatalf("step %d %s: %v", step, names[i], err)
			}
		}
		want := ref.Result()
		for i, m := range ms[:len(ms)-1] {
			if !m.Result().Equal(want, eqInt) {
				t.Fatalf("step %d (%s to %s): result diverged\n got %v\nwant %v",
					step, names[i], rel, m.Result(), want)
			}
		}
	}
}

func TestDifferentialCountPaperQuery(t *testing.T) {
	runDifferential(t, paperQuery(), paperOrder, countLift, nil, 1, 40)
}

func TestDifferentialSumPaperQuery(t *testing.T) {
	// SUM(B*D*E) with free variables A, C: Example 1.1 / Example 2.3.
	q := paperQuery("A", "C")
	lift := func(v string, x data.Value) int64 {
		switch v {
		case "B", "D", "E":
			return x.AsInt()
		default:
			return 1
		}
	}
	runDifferential(t, q, paperOrder, lift, nil, 2, 40)
}

func TestDifferentialUpdatableSubset(t *testing.T) {
	// Updates to T only (Example 4.2's materialization scenario).
	runDifferential(t, paperQuery(), paperOrder, countLift, []string{"T"}, 3, 30)
}

func TestDifferentialFreeVariables(t *testing.T) {
	// Group-by on A only.
	q := paperQuery("A")
	o := func() *vorder.Order {
		return vorder.MustNew(vorder.V("A", vorder.V("B"), vorder.V("C", vorder.V("D"), vorder.V("E"))))
	}
	runDifferential(t, q, o, valueLift, nil, 4, 40)
}

func TestDifferentialStarQuery(t *testing.T) {
	// Housing-shaped star join: all relations join on P.
	q := query.MustNew("star", nil,
		query.RelDef{Name: "R1", Schema: data.NewSchema("P", "X")},
		query.RelDef{Name: "R2", Schema: data.NewSchema("P", "Y")},
		query.RelDef{Name: "R3", Schema: data.NewSchema("P", "Z")},
	)
	o := func() *vorder.Order {
		return vorder.MustNew(vorder.V("P", vorder.V("X"), vorder.V("Y"), vorder.V("Z")))
	}
	runDifferential(t, q, o, countLift, nil, 5, 40)
}

func TestDifferentialChainQuery(t *testing.T) {
	// Matrix-chain-shaped join: A1(X1,X2) ⋈ A2(X2,X3) ⋈ A3(X3,X4),
	// group-by X1, X4.
	q := query.MustNew("chain", data.NewSchema("X1", "X4"),
		query.RelDef{Name: "A1", Schema: data.NewSchema("X1", "X2")},
		query.RelDef{Name: "A2", Schema: data.NewSchema("X2", "X3")},
		query.RelDef{Name: "A3", Schema: data.NewSchema("X3", "X4")},
	)
	o := func() *vorder.Order {
		return vorder.MustNew(vorder.V("X1", vorder.V("X4", vorder.V("X3", vorder.V("X2")))))
	}
	runDifferential(t, q, o, countLift, nil, 6, 40)
}

func TestDifferentialWideRelationComposed(t *testing.T) {
	// A wide relation joined with a thin one; exercises chain composition.
	q := query.MustNew("wide", nil,
		query.RelDef{Name: "W", Schema: data.NewSchema("A", "B", "C", "D")},
		query.RelDef{Name: "K", Schema: data.NewSchema("A", "F")},
	)
	o := func() *vorder.Order {
		return vorder.MustNew(vorder.V("A", vorder.V("F"), vorder.V("B", vorder.V("C", vorder.V("D")))))
	}
	runDifferential(t, q, o, valueLift, nil, 7, 30)
}

// --- triangle query with and without indicators -------------------------------

func triangleQuery() query.Query {
	return query.MustNew("tri", nil,
		query.RelDef{Name: "R", Schema: data.NewSchema("A", "B")},
		query.RelDef{Name: "S", Schema: data.NewSchema("B", "C")},
		query.RelDef{Name: "T", Schema: data.NewSchema("C", "A")},
	)
}

func triangleOrder() *vorder.Order {
	return vorder.MustNew(vorder.V("A", vorder.V("B", vorder.V("C"))))
}

func TestDifferentialTriangle(t *testing.T) {
	runDifferential(t, triangleQuery(), triangleOrder, countLift, nil, 8, 40)
}

// TestTriangleIndicators drives the engine with indicator projections
// (Appendix B) against plain re-evaluation.
func TestTriangleIndicators(t *testing.T) {
	q := triangleQuery()
	rng := rand.New(rand.NewSource(9))

	e, err := New[int64](q, triangleOrder(), ring.Int{}, countLift, Options[int64]{Indicators: true})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewReEval[int64](q, triangleOrder(), ring.Int{}, countLift)
	if err != nil {
		t.Fatal(err)
	}

	for _, rd := range q.Rels {
		base := randomDelta(rng, rd.Schema, 4, 6)
		if err := e.Load(rd.Name, base.Clone()); err != nil {
			t.Fatal(err)
		}
		if err := ref.Load(rd.Name, base.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Init(); err != nil {
		t.Fatal(err)
	}
	if err := ref.Init(); err != nil {
		t.Fatal(err)
	}
	if !e.Result().Equal(ref.Result(), eqInt) {
		t.Fatalf("initial results differ: %v vs %v", e.Result(), ref.Result())
	}

	names := q.RelNames()
	for step := 0; step < 60; step++ {
		rel := names[rng.Intn(len(names))]
		rd, _ := q.Rel(rel)
		delta := randomDelta(rng, rd.Schema, 4, 1+rng.Intn(2))
		if err := e.ApplyDelta(rel, delta.Clone()); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if err := ref.ApplyDelta(rel, delta.Clone()); err != nil {
			t.Fatal(err)
		}
		if !e.Result().Equal(ref.Result(), eqInt) {
			t.Fatalf("step %d (%s): %v vs %v", step, rel, e.Result(), ref.Result())
		}
	}
}

// TestTriangleIndicatorShrinksView checks the space claim of Example B.3:
// with the indicator projection, the view at C only holds (A,B) pairs that
// appear in R.
func TestTriangleIndicatorShrinksView(t *testing.T) {
	q := triangleQuery()
	n := 12

	build := func(ind bool) *Engine[int64] {
		e, err := New[int64](q, triangleOrder(), ring.Int{}, countLift, Options[int64]{Indicators: ind})
		if err != nil {
			t.Fatal(err)
		}
		// R is a sparse matching {(i,i)}, S and T are dense-ish bipartite
		// edge sets, so S ⋈ T at node C has ~n² (A,B) pairs but only n of
		// them survive the indicator.
		r := data.NewRelation[int64](ring.Int{}, data.NewSchema("A", "B"))
		for i := 0; i < n; i++ {
			r.Merge(data.Ints(int64(i), int64(i)), 1)
		}
		s := data.NewRelation[int64](ring.Int{}, data.NewSchema("B", "C"))
		tt := data.NewRelation[int64](ring.Int{}, data.NewSchema("C", "A"))
		for i := 0; i < n; i++ {
			for j := 0; j < 3; j++ {
				s.Merge(data.Ints(int64(i), int64((i+j)%n)), 1)
				tt.Merge(data.Ints(int64(i), int64((i+2*j)%n)), 1)
			}
		}
		e.Load("R", r)
		e.Load("S", s)
		e.Load("T", tt)
		if err := e.Init(); err != nil {
			t.Fatal(err)
		}
		return e
	}

	withInd := build(true)
	withoutInd := build(false)
	if c1, c2 := countResult(withInd), countResult(withoutInd); c1 != c2 {
		t.Fatalf("results differ: %d vs %d", c1, c2)
	}

	vcWith := viewSizeAt(withInd, "C")
	vcWithout := viewSizeAt(withoutInd, "C")
	if vcWith >= vcWithout {
		t.Errorf("indicator did not shrink V@C: %d vs %d", vcWith, vcWithout)
	}
}

func countResult(e *Engine[int64]) int64 {
	p, _ := e.Result().Get(data.Tuple{})
	return p
}

func viewSizeAt(e *Engine[int64], varName string) int {
	size := -1
	e.Tree().Walk(func(n *viewtree.Node) {
		if n.Var == varName {
			if v := e.ViewOf(n); v != nil {
				size = v.Len()
			}
		}
	})
	return size
}

// --- factored deltas ----------------------------------------------------------

// TestFactoredDeltaMatrixChain checks Section 5 / Example 6.1: rank-1
// factored updates produce the same result as their expansion.
func TestFactoredDeltaMatrixChain(t *testing.T) {
	q := query.MustNew("chain", data.NewSchema("X1", "X4"),
		query.RelDef{Name: "A1", Schema: data.NewSchema("X1", "X2")},
		query.RelDef{Name: "A2", Schema: data.NewSchema("X2", "X3")},
		query.RelDef{Name: "A3", Schema: data.NewSchema("X3", "X4")},
	)
	mkOrder := func() *vorder.Order {
		return vorder.MustNew(vorder.V("X1", vorder.V("X4", vorder.V("X3", vorder.V("X2")))))
	}
	rng := rand.New(rand.NewSource(10))
	lift := countLift

	e, err := New[int64](q, mkOrder(), ring.Int{}, lift, Options[int64]{Updatable: []string{"A2"}})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewReEval[int64](q, mkOrder(), ring.Int{}, lift)
	if err != nil {
		t.Fatal(err)
	}
	n := 5
	for _, name := range []string{"A1", "A2", "A3"} {
		rd, _ := q.Rel(name)
		m := data.NewRelation[int64](ring.Int{}, rd.Schema)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Merge(data.Ints(int64(i), int64(j)), int64(rng.Intn(5)-2))
			}
		}
		e.Load(name, m.Clone())
		ref.Load(name, m.Clone())
	}
	if err := e.Init(); err != nil {
		t.Fatal(err)
	}
	if err := ref.Init(); err != nil {
		t.Fatal(err)
	}

	for step := 0; step < 20; step++ {
		// Rank-1 update: u over X2 times v over X3.
		u := data.NewRelation[int64](ring.Int{}, data.NewSchema("X2"))
		u.Merge(data.Ints(int64(rng.Intn(n))), int64(1+rng.Intn(3)))
		v := data.NewRelation[int64](ring.Int{}, data.NewSchema("X3"))
		for j := 0; j < n; j++ {
			v.Merge(data.Ints(int64(j)), int64(rng.Intn(5)-2))
		}
		fd := FactoredDelta[int64]{Factors: []*data.Relation[int64]{u, v}}
		if err := e.ApplyFactoredDelta("A2", fd); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if err := ref.ApplyDelta("A2", fd.Expand(data.NewSchema("X2", "X3"))); err != nil {
			t.Fatal(err)
		}
		if !e.Result().Equal(ref.Result(), eqInt) {
			t.Fatalf("step %d: factored delta diverged", step)
		}
	}
}

func TestFactoredDeltaValidation(t *testing.T) {
	u := data.NewRelation[int64](ring.Int{}, data.NewSchema("X"))
	v := data.NewRelation[int64](ring.Int{}, data.NewSchema("X"))
	fd := FactoredDelta[int64]{Factors: []*data.Relation[int64]{u, v}}
	if err := fd.Validate(data.NewSchema("X", "Y")); err == nil {
		t.Error("overlapping factors should be rejected")
	}
	w := data.NewRelation[int64](ring.Int{}, data.NewSchema("Y"))
	fd = FactoredDelta[int64]{Factors: []*data.Relation[int64]{u, w}}
	if err := fd.Validate(data.NewSchema("X", "Y", "Z")); err == nil {
		t.Error("incomplete cover should be rejected")
	}
	if err := fd.Validate(data.NewSchema("X", "Y")); err != nil {
		t.Errorf("valid decomposition rejected: %v", err)
	}
}

// --- engine bookkeeping --------------------------------------------------------

func TestEngineViewCounts(t *testing.T) {
	q := paperQuery()
	// Updates to T only: root + V@B + V@E (+ S leaf not needed since V@E
	// covers it) — Example 4.2 stores 3 views.
	e, err := New[int64](q, paperOrder(), ring.Int{}, countLift, Options[int64]{Updatable: []string{"T"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.ViewCount(); got != 3 {
		t.Errorf("ViewCount(U={T}) = %d, want 3", got)
	}
	// All relations updatable: 5 inner views.
	e2, _ := New[int64](q, paperOrder(), ring.Int{}, countLift, Options[int64]{})
	if got := e2.ViewCount(); got != 5 {
		t.Errorf("ViewCount(U=all) = %d, want 5", got)
	}
}

func TestEngineErrors(t *testing.T) {
	q := paperQuery()
	e, err := New[int64](q, paperOrder(), ring.Int{}, countLift, Options[int64]{Updatable: []string{"T"}})
	if err != nil {
		t.Fatal(err)
	}
	d := data.NewRelation[int64](ring.Int{}, data.NewSchema("C", "D"))
	if err := e.ApplyDelta("T", d); err == nil {
		t.Error("ApplyDelta before Init should fail")
	}
	if err := e.Init(); err != nil {
		t.Fatal(err)
	}
	if err := e.ApplyDelta("R", randomDelta(rand.New(rand.NewSource(1)), data.NewSchema("A", "B"), 3, 1)); err == nil {
		t.Error("update to non-updatable relation should fail")
	}
	bad := data.NewRelation[int64](ring.Int{}, data.NewSchema("C", "Z"))
	if err := e.ApplyDelta("T", bad); err == nil {
		t.Error("schema mismatch should fail")
	}
	if _, err := New[int64](q, paperOrder(), ring.Int{}, countLift, Options[int64]{Updatable: []string{"Nope"}}); err == nil {
		t.Error("unknown updatable relation should fail")
	}
}

func TestRecursiveViewCountsStar(t *testing.T) {
	// Housing-shaped star: the recursive hierarchy has root + one singleton
	// view per relation (each aggregated per join key).
	q := query.MustNew("star", nil,
		query.RelDef{Name: "R1", Schema: data.NewSchema("P", "X")},
		query.RelDef{Name: "R2", Schema: data.NewSchema("P", "Y")},
		query.RelDef{Name: "R3", Schema: data.NewSchema("P", "Z")},
	)
	m, err := NewRecursive[int64](q, ring.Int{}, countLift, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ViewCount(); got != 4 {
		t.Errorf("ViewCount = %d, want 4 (root + 3 singletons)", got)
	}
}

func TestRecursiveViewCountExceedsFIVM(t *testing.T) {
	// On the snowflake-shaped paper query, DBT materializes more views than
	// F-IVM needs — the core space gap the paper reports.
	q := paperQuery()
	fivm, _ := New[int64](q, paperOrder(), ring.Int{}, countLift, Options[int64]{})
	dbt, _ := NewRecursive[int64](q, ring.Int{}, countLift, nil)
	if dbt.ViewCount() <= fivm.ViewCount() {
		t.Errorf("DBT views (%d) should exceed F-IVM views (%d)", dbt.ViewCount(), fivm.ViewCount())
	}
}
