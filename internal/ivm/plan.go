package ivm

import (
	"fmt"
	"time"

	"fivm/internal/data"
	"fivm/internal/viewtree"
)

// deltaPlan is the static schedule for propagating a delta from one leaf to
// the root (the delta tree of Figure 4, compiled ahead of time): one step
// per ancestor view, each listing the sibling views to probe, the variables
// to marginalize, and the projection onto the ancestor's keys.
type deltaPlan[P any] struct {
	leaf  *viewtree.Node
	steps []*planStep[P]
}

type planStep[P any] struct {
	node      *viewtree.Node
	siblings  []*planSibling
	accSchema data.Schema
	margVars  []margVar
	outProj   data.Projector

	// Reusable scratch for exec: two work-item slices swapped between join
	// stages, a key-encoding buffer, and the output delta relation (cleared
	// and refilled per call), so steady-state propagation does not allocate
	// per step. Plans are engine-owned and single-threaded; the output
	// relation is consumed (merged and iterated) before the next exec of the
	// same step, and its tuples/payloads may be retained by views, which is
	// safe because tuples are immutable and views copy payloads they intend
	// to mutate (rings with in-place accumulation store owned deep copies).
	items, spare []workItem[P]
	keyBuf       []byte
	out          *data.Relation[P]

	// Product slots for the join stages: one append-only buffer per exec
	// (reset between execs, never truncated mid-exec), so a slot pointer a
	// work item carries across stages — including via the identity
	// short-circuit, which hands a stage-k slot pointer to stage k+1 —
	// stays valid for the whole call; see prodBuf.
	prods prodBuf[P]
	// tupArena backs the tuples of join-extended work items: slices into one
	// growing buffer reused across execs (work items never outlive the next
	// exec, and everything stored durably is copied by projection first).
	tupArena data.Tuple

	// Lift-product cache: lifting functions are pure (a paper invariant),
	// and marginalized variables range over small domains, so the product of
	// the step's liftings is memoized per marginalized-value combination.
	// margProj encodes just those values as the cache key; values are stored
	// by pointer so hits hand out a read-only operand without copying. The
	// cache is reset if it ever exceeds liftCacheMax (unbounded domains).
	margProj  data.Projector
	liftCache map[string]*P
	liftKey   []byte
	liftFn    func(t data.Tuple) *P

	// fuse holds the sorted-run accumulation state: marginalizing steps whose
	// work items mostly collapse onto few output keys are executed by sorting
	// the items by output key and merging one accumulated payload per run
	// instead of one per item; see runFuser.
	fuse runFuser[P]

	// allFullSibs marks steps whose every sibling is probed by full key, so
	// work items keep their (relation-stored, immutable) input tuples and
	// the output relation may store prefix subslices instead of copies.
	allFullSibs bool
}

// liftCacheMax bounds the per-step lift-product cache.
const liftCacheMax = 1 << 16

type margVar struct {
	name string
	idx  int
}

type planSibling struct {
	node *viewtree.Node
	// common is the probe key: the sibling variables bound by the
	// accumulated tuple at this point of the join.
	common    data.Schema
	probeProj data.Projector
	// full marks that common covers the sibling's entire key, so a direct
	// map lookup replaces an index probe.
	full bool
	// extra is the sibling variables appended to the accumulated tuple.
	extra     data.Schema
	extraProj data.Projector
}

// buildPlan compiles the leaf-to-root delta schedule for a leaf.
func (e *Engine[P]) buildPlan(leaf *viewtree.Node) (*deltaPlan[P], error) {
	plan := &deltaPlan[P]{leaf: leaf}
	cur := leaf
	for node := cur.Parent(); node != nil; node = node.Parent() {
		st := &planStep[P]{node: node}
		acc := cur.Keys.Clone()

		// Collect the sibling views to join with. A sibling the
		// materialization policy chose not to store (cost-demoted) is
		// expanded in place: its children are probed instead, and its
		// marginalized variables join this step's lift-and-marginalize set —
		// V = ⊕_{V.Marg}(⨝ children) substituted into the step's join, which
		// is exact because lifting products commute across the join.
		var sibs []*viewtree.Node
		var inlineMarg data.Schema
		var expand func(s *viewtree.Node)
		expand = func(s *viewtree.Node) {
			if s.IsLeaf() || e.mat[s] {
				sibs = append(sibs, s)
				return
			}
			inlineMarg = append(inlineMarg, s.Marg...)
			for _, c := range s.Children {
				expand(c)
			}
		}
		for _, c := range node.Children {
			if c != cur {
				expand(c)
			}
		}
		for len(sibs) > 0 {
			best, bestOverlap := 0, -1
			for i, s := range sibs {
				if ov := len(s.Keys.Intersect(acc)); ov > bestOverlap {
					best, bestOverlap = i, ov
				}
			}
			s := sibs[best]
			sibs = append(sibs[:best], sibs[best+1:]...)

			common := s.Keys.Intersect(acc)
			ps := &planSibling{
				node:      s,
				common:    common,
				probeProj: data.MustProjector(acc, common),
				full:      common.SameSet(s.Keys),
				extra:     s.Keys.Minus(common),
			}
			ps.extraProj = data.MustProjector(s.Keys, ps.extra)
			st.siblings = append(st.siblings, ps)
			acc = acc.Union(ps.extra)
		}
		st.accSchema = acc
		allMarg := node.Marg
		if len(inlineMarg) > 0 {
			allMarg = append(node.Marg.Clone(), inlineMarg...)
		}
		for _, mv := range allMarg {
			i := acc.IndexOf(mv)
			if i < 0 {
				return nil, fmt.Errorf("ivm: marginalized variable %q missing from join schema %v at %s", mv, acc, node.Name())
			}
			st.margVars = append(st.margVars, margVar{name: mv, idx: i})
		}
		if len(st.margVars) > 0 {
			st.margProj = data.MustProjector(acc, acc.Intersect(allMarg))
			st.liftCache = make(map[string]*P)
		}
		st.allFullSibs = true
		for _, sib := range st.siblings {
			if !sib.full {
				st.allFullSibs = false
				break
			}
		}
		var err error
		st.outProj, err = data.NewProjector(acc, node.Keys)
		if err != nil {
			return nil, fmt.Errorf("ivm: %s: %v", node.Name(), err)
		}
		plan.steps = append(plan.steps, st)
		cur = node
	}
	return plan, nil
}

// registerIndexes creates the secondary indexes the plan probes. Sibling
// views must be materialized; the µ rule guarantees this because the delta
// path's subtree contains an updatable relation.
func (p *deltaPlan[P]) registerIndexes(e *Engine[P]) {
	for _, st := range p.steps {
		for _, sib := range st.siblings {
			v := e.views[sib.node]
			if v == nil {
				panic(fmt.Sprintf("ivm: sibling view %s of delta path for %s is not materialized", sib.node.Name(), p.leaf.Name()))
			}
			if !sib.full {
				v.EnsureIndex(sib.common)
			}
		}
	}
}

// run propagates a delta along the plan, merging into every materialized
// view on the path (including the leaf itself).
func (p *deltaPlan[P]) run(e *Engine[P], delta *data.Relation[P]) error {
	if v := e.views[p.leaf]; v != nil {
		v.MergeAllIndexed(delta)
	}
	cur := delta
	for _, st := range p.steps {
		next := st.exec(e, cur)
		if v := e.views[st.node]; v != nil {
			v.MergeAllIndexed(next)
		}
		if next.Len() == 0 {
			return nil
		}
		cur = next
	}
	return nil
}

// workItem carries a join tuple and a pointer to its payload. Payloads stay
// where they already live — delta entries, view entries, or a product slot
// of the step's scratch buffers — so extending the join never copies them.
type workItem[P any] struct {
	t data.Tuple
	p *P
}

// exec computes the delta of st.node given the delta of the child it came
// from: it joins the child delta with the sibling views by index probes,
// lifts and marginalizes the node's bound variables, and projects onto the
// node's keys. Work-item slices and the probe-key buffer are reused across
// calls, and index probes yield entries directly, so the steady-state join
// allocates only for freshly extended tuples.
func (st *planStep[P]) exec(e *Engine[P], delta *data.Relation[P]) *data.Relation[P] {
	items := st.items[:0]
	delta.IterateEntries(func(en *data.Entry[P]) bool {
		items = append(items, workItem[P]{t: en.Tuple, p: &en.Payload})
		return true
	})

	spare := st.spare
	if st.prods.r == nil {
		st.prods = newProdBuf[P](e.ring)
	}
	st.prods.reset()
	arena := st.tupArena[:0]
	for _, sib := range st.siblings {
		if len(items) == 0 {
			break
		}
		view := e.views[sib.node]
		next := spare[:0]
		if sib.full {
			for _, it := range items {
				if en := view.LookupProjected(sib.probeProj, it.t); en != nil {
					next = append(next, workItem[P]{t: it.t, p: st.prods.product(it.p, &en.Payload)})
				}
			}
		} else {
			ix := view.EnsureIndex(sib.common)
			for _, it := range items {
				st.keyBuf = sib.probeProj.AppendKey(st.keyBuf[:0], it.t)
				for en := range ix.ProbeBytes(st.keyBuf).All() {
					start := len(arena)
					arena = append(arena, it.t...)
					arena = sib.extraProj.AppendTo(arena, en.Tuple)
					tt := arena[start:len(arena):len(arena)]
					next = append(next, workItem[P]{t: tt, p: st.prods.product(it.p, &en.Payload)})
				}
			}
		}
		items, spare = next, items
	}
	st.items, st.spare = items, spare
	st.tupArena = arena

	// Reserve only on first use: Clear retains the map's capacity, which a
	// subsequent Reserve would throw away by allocating a fresh table. The
	// output is recycling scratch: its entries live only until the next exec
	// of this step, and every consumer copies what it keeps.
	if st.out == nil {
		st.out = data.NewRelation(e.ring, st.node.Keys)
		st.out.RecycleCleared()
		if st.allFullSibs {
			st.out.ShareProjectedTuples()
		}
		st.out.Reserve(len(items))
	} else {
		st.out.Clear()
	}
	out := st.out
	timed := len(st.margVars) > 0 && e.opts.PayloadTransform == nil && st.fuse.eligible(st.prods.mut, len(items))
	var start time.Time
	if timed {
		start = time.Now()
		if st.fuse.chooseFused() {
			if st.liftFn == nil {
				st.liftFn = func(t data.Tuple) *P { return st.liftProduct(e, t) }
			}
			distinct := st.fuse.run(st.prods.mut, items, st.outProj, out, st.liftFn)
			st.fuse.noteCost(true, len(items), time.Since(start))
			st.fuse.note(len(items), distinct)
			return out
		}
	}
	for _, it := range items {
		// Multiply the liftings together first: lift values are small ring
		// elements, while the accumulated payload can be large (a wide
		// cofactor triple or a relational payload), so the payload joins the
		// product once instead of once per variable — and, for rings with
		// in-place accumulation, directly inside the output's stored payload
		// via the fused multiply-merge (zero allocations on existing keys).
		if len(st.margVars) > 0 {
			lp := st.liftProduct(e, it.t)
			if e.opts.PayloadTransform != nil {
				out.MergeProjected(st.outProj, it.t, e.opts.PayloadTransform(st.node, e.ring.Mul(*it.p, *lp)))
			} else {
				out.MergeMulProjected(st.outProj, it.t, it.p, lp)
			}
			continue
		}
		p := *it.p
		if e.opts.PayloadTransform != nil {
			p = e.opts.PayloadTransform(st.node, p)
		}
		out.MergeProjected(st.outProj, it.t, p)
	}
	if timed {
		st.fuse.noteCost(false, len(items), time.Since(start))
	}
	if len(st.margVars) > 0 {
		st.fuse.note(len(items), out.Len())
	}
	return out
}

// liftProduct returns the product of the step's lifting functions applied to
// the marginalized values of t, memoized in the step's lift-product cache
// (lifting functions are pure, and marginalized variables range over small
// domains). The returned pointer is read-only and valid until the cache is
// reset.
func (st *planStep[P]) liftProduct(e *Engine[P], t data.Tuple) *P {
	st.liftKey = st.margProj.AppendKey(st.liftKey[:0], t)
	lp, ok := st.liftCache[string(st.liftKey)]
	if !ok {
		v := e.lift(st.margVars[0].name, t[st.margVars[0].idx])
		for _, mv := range st.margVars[1:] {
			v = e.ring.Mul(v, e.lift(mv.name, t[mv.idx]))
		}
		lp = &v
		if len(st.liftCache) >= liftCacheMax {
			clear(st.liftCache)
		}
		st.liftCache[string(st.liftKey)] = lp
	}
	return lp
}
