package ivm

import (
	"fmt"

	"fivm/internal/data"
	"fivm/internal/query"
	"fivm/internal/ring"
	"fivm/internal/viewtree"
	"fivm/internal/vorder"
)

// FirstOrder is classical first-order IVM (1-IVM): it materializes only the
// input relations and the query result. Each update recomputes the delta
// query on the fly over the stored relations — with aggregates pushed past
// joins, as DBToaster does for delta queries with disconnected components —
// and merges it into the result. No auxiliary views are kept, so updates
// cost at least linear time in general.
type FirstOrder[P any] struct {
	q      query.Query
	ring   ring.Ring[P]
	lift   data.LiftFunc[P]
	root   *viewtree.Node
	bases  map[string]*data.Relation[P]
	result *data.Relation[P]
	pub    publisher[P]
}

// NewFirstOrder builds a first-order IVM maintainer over the given variable
// order (used only to structure the on-the-fly delta evaluation).
func NewFirstOrder[P any](q query.Query, o *vorder.Order, r ring.Ring[P], lift data.LiftFunc[P]) (*FirstOrder[P], error) {
	root, err := buildTree(q, o, true)
	if err != nil {
		return nil, err
	}
	return &FirstOrder[P]{q: q, ring: r, lift: lift, root: root, bases: make(map[string]*data.Relation[P])}, nil
}

// Load installs the initial contents of a relation.
func (m *FirstOrder[P]) Load(rel string, r *data.Relation[P]) error {
	if _, ok := m.q.Rel(rel); !ok {
		return fmt.Errorf("ivm: unknown relation %q", rel)
	}
	m.bases[rel] = r.Clone()
	return nil
}

// Init computes the initial result from the loaded relations.
func (m *FirstOrder[P]) Init() error {
	m.result = evalTree(m.root, m.q, m.ring, m.lift, m.bases)
	return nil
}

// ApplyDelta evaluates the first-order delta query — the query with the
// updated relation replaced by the delta — over the stored base relations,
// merges it into the result, and then merges the delta into the base.
func (m *FirstOrder[P]) ApplyDelta(rel string, delta *data.Relation[P]) error {
	if err := m.applyDelta(rel, delta); err != nil {
		return err
	}
	m.maybePublish()
	return nil
}

// applyDelta is ApplyDelta without the per-batch snapshot publication.
func (m *FirstOrder[P]) applyDelta(rel string, delta *data.Relation[P]) error {
	rd, ok := m.q.Rel(rel)
	if !ok {
		return fmt.Errorf("ivm: unknown relation %q", rel)
	}
	if !delta.Schema().SameSet(rd.Schema) {
		return fmt.Errorf("ivm: delta schema %v does not match %v", delta.Schema(), rd.Schema)
	}
	dq := evalTreeSubst(m.root, m.q, m.ring, m.lift, m.bases, rel, delta)
	if m.result == nil {
		m.result = data.NewRelation(m.ring, m.root.Keys)
	}
	m.result.MergeAll(dq)

	base := m.bases[rel]
	if base == nil {
		base = data.NewRelation(m.ring, rd.Schema)
		m.bases[rel] = base
	}
	if base.Schema().Equal(delta.Schema()) {
		base.MergeAll(delta)
	} else {
		base.MergeAll(data.Project(delta, base.Schema()))
	}
	return nil
}

// Result returns the maintained query result as a live handle; see the
// Maintainer contract — concurrent readers must go through Snapshot.
func (m *FirstOrder[P]) Result() *data.Relation[P] {
	if m.result == nil {
		return data.NewRelation(m.ring, m.root.Keys)
	}
	return m.result
}

// ViewCount reports the stored relations plus the result.
func (m *FirstOrder[P]) ViewCount() int { return len(m.bases) + 1 }

// MemoryBytes estimates the footprint of the stored relations and result.
func (m *FirstOrder[P]) MemoryBytes() int {
	total := 0
	for _, b := range m.bases {
		total += relationBytes(b)
	}
	if m.result != nil {
		total += relationBytes(m.result)
	}
	return total
}
