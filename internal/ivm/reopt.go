package ivm

import (
	"sort"
	"strings"

	"fivm/internal/data"
	"fivm/internal/viewtree"
	"fivm/internal/vorder"
)

// Adaptive re-optimization defaults.
const (
	defaultReoptEvery  = 64
	defaultDriftFactor = 2.0
	defaultShareDrift  = 0.2
	// reoptImprovement is the cost ratio a candidate order must beat before
	// the engine pays for a migration: re-planning on estimation noise would
	// thrash.
	reoptImprovement = 0.9
)

// Replans reports how many times the engine has re-planned mid-stream.
func (e *Engine[P]) Replans() int { return e.replans }

// Order returns the engine's current (prepared) variable order, or nil
// before a deferred self-planning Init.
func (e *Engine[P]) Order() *vorder.Order { return e.order }

// Stats returns the engine's statistics collector (nil when the engine runs
// without the optimizer).
func (e *Engine[P]) Stats() *data.Stats { return e.stats }

// maybeReoptimize is called after every applied delta on adaptive engines:
// at the configured cadence it measures statistics drift against the
// snapshot taken at plan time and, when the drift is large and a freshly
// chosen order is estimated sufficiently cheaper, re-plans and migrates.
func (e *Engine[P]) maybeReoptimize() error {
	e.ticks++
	if e.stats == nil || e.root == nil {
		return nil
	}
	every := e.opts.ReoptEvery
	if every <= 0 {
		every = defaultReoptEvery
	}
	if e.ticks%every != 0 {
		return nil
	}
	factor := e.opts.DriftFactor
	if factor <= 1 {
		factor = defaultDriftFactor
	}
	cardFactor, shareDelta := e.stats.DriftFrom(e.planSnap)
	if cardFactor < factor && shareDelta < defaultShareDrift {
		return nil
	}

	m := e.costModel()
	cand, err := vorder.Choose(e.q, vorder.ChooseOptions{Model: m})
	if err != nil {
		return nil // keep the current plan; the optimizer is advisory here
	}
	if err := cand.Prepare(e.q); err != nil {
		return nil
	}
	if m.Cost(cand).Total() >= m.Cost(e.order).Total()*reoptImprovement {
		// Drift is real but the current order still ranks fine (or the gain
		// is marginal). Re-baseline so the check does not fire every tick.
		e.planSnap = e.stats.Snapshot()
		return nil
	}
	return e.replan(cand)
}

// migrationSig identifies a view's definition independently of its tree: name
// (variable + exact key order, or relation), covered relations, and
// marginalized variables. Two views with equal signatures hold identical
// contents, so a migration may hand the old relation to the new view.
func migrationSig(n *viewtree.Node) string {
	rels := append([]string(nil), n.Rels...)
	sort.Strings(rels)
	marg := append([]string(nil), n.Marg...)
	sort.Strings(marg)
	return n.Name() + "|" + strings.Join(rels, ",") + "|" + strings.Join(marg, ",")
}

// replan switches the engine to a new variable order mid-stream: it compiles
// the new view tree and delta plans, then migrates state by reusing every
// materialized relation whose view definition is unchanged and rebuilding
// only the views whose schemas changed, bottom-up from the (always
// materialized) leaf contents.
func (e *Engine[P]) replan(o *vorder.Order) error {
	// Harvest reusable state from the old tree.
	oldViews := e.views
	bases := make(map[string]*data.Relation[P], len(e.q.Rels))
	for _, leaf := range e.root.Leaves() {
		if leaf.Indicator {
			continue
		}
		if v := oldViews[leaf]; v != nil {
			bases[leaf.Rel] = v.Relation
		}
	}
	for _, rd := range e.q.Rels {
		if bases[rd.Name] == nil {
			// A leaf is missing (not materialized): migration cannot rebuild
			// exactly; keep the current plan.
			return nil
		}
	}
	reuse := make(map[string]*data.IndexedRelation[P], len(oldViews))
	for n, v := range oldViews {
		reuse[migrationSig(n)] = v
	}

	if err := e.plan(o); err != nil {
		return err
	}

	// Rebuild bottom-up. Unchanged views transfer their relations (indexes
	// included) and skip recomputation, but their subtrees are still
	// visited: materialized descendants (leaves above all) must be
	// installed in e.views even when the ancestor's contents needed no
	// work — delta plans probe and merge into them directly.
	saved := e.bases
	e.bases = bases
	var build func(n *viewtree.Node) *data.Relation[P]
	build = func(n *viewtree.Node) *data.Relation[P] {
		if v, ok := reuse[migrationSig(n)]; ok {
			if e.mat[n] {
				e.views[n] = v
			}
			for _, c := range n.Children {
				build(c)
			}
			return v.Relation
		}
		rel := e.evalFromChildren(n, build)
		if e.mat[n] {
			e.views[n] = data.NewIndexedRelation(rel)
		}
		return rel
	}
	build(e.root)
	e.bases = saved

	for _, plan := range e.plans {
		plan.registerIndexes(e)
	}
	e.attachLeafStats()
	e.planSnap = e.stats.Snapshot()
	e.replans++
	return nil
}
