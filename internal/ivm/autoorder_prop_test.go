package ivm

import (
	"math/rand"
	"testing"

	"fivm/internal/data"
	"fivm/internal/query"
	"fivm/internal/ring"
	"fivm/internal/vorder"
)

// autoStrategies pairs, per strategy, a maintainer over the handpicked
// order with one that self-plans (Order nil).
func autoStrategies[P any](q query.Query, hand func() *vorder.Order, r ring.Ring[P], lift data.LiftFunc[P]) map[string][2]func() (Maintainer[P], error) {
	return map[string][2]func() (Maintainer[P], error){
		"F-IVM": {
			func() (Maintainer[P], error) { return New[P](q, hand(), r, lift, Options[P]{}) },
			func() (Maintainer[P], error) { return New[P](q, nil, r, lift, Options[P]{}) },
		},
		"1-IVM": {
			func() (Maintainer[P], error) { return NewFirstOrder[P](q, hand(), r, lift) },
			func() (Maintainer[P], error) { return NewFirstOrder[P](q, nil, r, lift) },
		},
		"DBT": {
			func() (Maintainer[P], error) { return NewRecursive[P](q, r, lift, nil) },
			func() (Maintainer[P], error) { return NewRecursive[P](q, r, lift, nil) },
		},
		"RE-EVAL": {
			func() (Maintainer[P], error) { return NewReEval[P](q, hand(), r, lift) },
			func() (Maintainer[P], error) { return NewReEval[P](q, nil, r, lift) },
		},
	}
}

// runAutoOrderEquivalence drives the handpicked-order and self-planned
// maintainers of every strategy through identical random streams (inserts
// and deletes, preloaded contents) and demands byte-identical rendered
// results after every batch.
func runAutoOrderEquivalence[P any](t *testing.T, q query.Query, hand func() *vorder.Order, r ring.Ring[P], lift data.LiftFunc[P],
	mkDelta func(rng *rand.Rand, schema data.Schema) *data.Relation[P]) {
	t.Helper()
	for name, mk := range autoStrategies[P](q, hand, r, lift) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(name)) * 1009))
			ref, err := mk[0]()
			if err != nil {
				t.Fatal(err)
			}
			auto, err := mk[1]()
			if err != nil {
				t.Fatal(err)
			}
			for _, rd := range q.Rels {
				base := mkDelta(rng, rd.Schema)
				if err := ref.Load(rd.Name, base.Clone()); err != nil {
					t.Fatal(err)
				}
				if err := auto.Load(rd.Name, base.Clone()); err != nil {
					t.Fatal(err)
				}
			}
			for _, m := range []Maintainer[P]{ref, auto} {
				if err := m.Init(); err != nil {
					t.Fatal(err)
				}
			}
			if got, want := auto.Result().String(), ref.Result().String(); got != want {
				t.Fatalf("after Init: auto %s vs handpicked %s", got, want)
			}
			rels := q.RelNames()
			for step := 0; step < 12; step++ {
				batch := make([]NamedDelta[P], 0, 3)
				for i, n := 0, 1+rng.Intn(3); i < n; i++ {
					rel := rels[rng.Intn(len(rels))]
					rd, _ := q.Rel(rel)
					batch = append(batch, NamedDelta[P]{Rel: rel, Delta: mkDelta(rng, rd.Schema)})
				}
				if err := ref.ApplyDeltas(batch); err != nil {
					t.Fatal(err)
				}
				if err := auto.ApplyDeltas(batch); err != nil {
					t.Fatal(err)
				}
				if got, want := auto.Result().String(), ref.Result().String(); got != want {
					t.Fatalf("step %d: auto %s vs handpicked %s", step, got, want)
				}
			}
		})
	}
}

// intDeltaGen builds small random multiplicity deltas (mixing inserts and
// deletes once keys repeat).
func intDeltaGen(rng *rand.Rand, schema data.Schema) *data.Relation[int64] {
	return randomDelta(rng, schema, 4, 1+rng.Intn(4))
}

func floatDeltaGen(rng *rand.Rand, schema data.Schema) *data.Relation[float64] {
	d := data.NewRelation[float64](ring.Float{}, schema)
	for i, n := 0, 1+rng.Intn(4); i < n; i++ {
		tup := make(data.Tuple, len(schema))
		for j := range tup {
			tup[j] = data.Int(int64(rng.Intn(4)))
		}
		d.Merge(tup, float64(rng.Intn(5)-2))
	}
	return d
}

func tripleDeltaGen(rng *rand.Rand, schema data.Schema) *data.Relation[ring.Triple] {
	d := data.NewRelation[ring.Triple](ring.Cofactor{}, schema)
	for i, n := 0, 1+rng.Intn(4); i < n; i++ {
		tup := make(data.Tuple, len(schema))
		for j := range tup {
			tup[j] = data.Int(int64(rng.Intn(4)))
		}
		c := float64(rng.Intn(4) - 1)
		if c == 0 {
			c = 1
		}
		d.Merge(tup, ring.Triple{C: c})
	}
	return d
}

// TestAutoOrderMatchesHandpicked covers the optimizer-equivalence property
// across strategies × rings × queries: self-planned orders must maintain
// byte-identical results to the handpicked ones.
func TestAutoOrderMatchesHandpicked(t *testing.T) {
	cases := []struct {
		qname string
		q     query.Query
		hand  func() *vorder.Order
	}{
		{"paper", paperQuery("A"), paperOrder},
		{"triangle", triangleQuery(), triangleOrder},
	}
	for _, c := range cases {
		vars := c.q.Vars()
		idx := make(map[string]int, len(vars))
		for i, v := range vars {
			idx[v] = i
		}
		t.Run(c.qname+"/int", func(t *testing.T) {
			runAutoOrderEquivalence[int64](t, c.q, c.hand, ring.Int{}, valueLift, intDeltaGen)
		})
		t.Run(c.qname+"/float", func(t *testing.T) {
			runAutoOrderEquivalence[float64](t, c.q, c.hand, ring.Float{},
				func(v string, x data.Value) float64 { return x.AsFloat() + 1 }, floatDeltaGen)
		})
		t.Run(c.qname+"/cofactor", func(t *testing.T) {
			runAutoOrderEquivalence[ring.Triple](t, c.q, c.hand, ring.Cofactor{},
				func(v string, x data.Value) ring.Triple { return ring.LiftValue(idx[v], x.AsFloat()) },
				tripleDeltaGen)
		})
	}
}

// runParallelAutoEquivalence drives an 8-worker sharded wrapper whose
// shards all self-plan (Order nil) against a sequential handpicked engine:
// the reduced result must match byte for byte.
func runParallelAutoEquivalence[P any](t *testing.T, r ring.Ring[P], lift data.LiftFunc[P],
	mkDelta func(rng *rand.Rand, schema data.Schema) *data.Relation[P]) {
	t.Helper()
	q := paperQuery("A")
	rng := rand.New(rand.NewSource(4242))
	par, err := newParallel[P](q, r, 8,
		func() (Maintainer[P], error) { return New[P](q, nil, r, lift, Options[P]{}) })
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	seq, err := New[P](q, paperOrder(), r, lift, Options[P]{})
	if err != nil {
		t.Fatal(err)
	}
	for _, rd := range q.Rels {
		base := mkDelta(rng, rd.Schema)
		if err := par.Load(rd.Name, base.Clone()); err != nil {
			t.Fatal(err)
		}
		if err := seq.Load(rd.Name, base.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	if err := par.Init(); err != nil {
		t.Fatal(err)
	}
	if err := seq.Init(); err != nil {
		t.Fatal(err)
	}
	rels := q.RelNames()
	for step := 0; step < 10; step++ {
		batch := make([]NamedDelta[P], 0, 4)
		for i, n := 0, 1+rng.Intn(4); i < n; i++ {
			rel := rels[rng.Intn(len(rels))]
			rd, _ := q.Rel(rel)
			batch = append(batch, NamedDelta[P]{Rel: rel, Delta: mkDelta(rng, rd.Schema)})
		}
		if err := par.ApplyDeltas(batch); err != nil {
			t.Fatal(err)
		}
		if err := seq.ApplyDeltas(batch); err != nil {
			t.Fatal(err)
		}
		if got, want := par.Result().String(), seq.Result().String(); got != want {
			t.Fatalf("step %d: parallel-auto %s vs sequential-handpicked %s", step, got, want)
		}
	}
}

// TestAutoOrderMatchesHandpickedParallel repeats the optimizer-equivalence
// property under the sharded parallel wrapper at 8 workers for the Z, R,
// and cofactor rings.
func TestAutoOrderMatchesHandpickedParallel(t *testing.T) {
	q := paperQuery("A")
	vars := q.Vars()
	idx := make(map[string]int, len(vars))
	for i, v := range vars {
		idx[v] = i
	}
	t.Run("int", func(t *testing.T) {
		runParallelAutoEquivalence[int64](t, ring.Int{}, valueLift, intDeltaGen)
	})
	t.Run("float", func(t *testing.T) {
		runParallelAutoEquivalence[float64](t, ring.Float{},
			func(v string, x data.Value) float64 { return x.AsFloat() + 1 }, floatDeltaGen)
	})
	t.Run("cofactor", func(t *testing.T) {
		runParallelAutoEquivalence[ring.Triple](t, ring.Cofactor{},
			func(v string, x data.Value) ring.Triple { return ring.LiftValue(idx[v], x.AsFloat()) },
			tripleDeltaGen)
	})
}

// TestNilOrderThroughFacadePaths exercises Order-nil construction both with
// pre-collected statistics (plan at New) and without (plan deferred to
// Init).
func TestNilOrderThroughFacadePaths(t *testing.T) {
	q := paperQuery()
	st := data.NewStats()
	for _, rd := range q.Rels {
		rs := st.Rel(rd.Name, rd.Schema)
		for i := 0; i < 50; i++ {
			tup := make(data.Tuple, len(rd.Schema))
			for j := range tup {
				tup[j] = data.Int(int64(i % 7))
			}
			rs.ObserveInsert(tup)
		}
	}
	immediate, err := New[int64](q, nil, ring.Int{}, countLift, Options[int64]{Stats: st})
	if err != nil {
		t.Fatal(err)
	}
	if immediate.Order() == nil {
		t.Fatal("stats-backed nil-order engine should plan at New")
	}
	deferred, err := New[int64](q, nil, ring.Int{}, countLift, Options[int64]{})
	if err != nil {
		t.Fatal(err)
	}
	if deferred.Order() != nil {
		t.Fatal("deferred engine planned before Init")
	}
	for _, e := range []*Engine[int64]{immediate, deferred} {
		if err := e.Init(); err != nil {
			t.Fatal(err)
		}
		if e.Order() == nil {
			t.Fatal("no order after Init")
		}
		if err := e.Order().Validate(q); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 5; step++ {
		for _, rd := range q.Rels {
			d := randomDelta(rng, rd.Schema, 3, 2)
			if err := immediate.ApplyDelta(rd.Name, d.Clone()); err != nil {
				t.Fatal(err)
			}
			if err := deferred.ApplyDelta(rd.Name, d); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got, want := deferred.Result().String(), immediate.Result().String(); got != want {
		t.Fatalf("deferred %s vs immediate %s", got, want)
	}
}

// TestParallelRouterStats checks that a collector attached to the parallel
// router observes every routed delta — hash-partitioned relations through
// the Sharded routing path, broadcast relations directly.
func TestParallelRouterStats(t *testing.T) {
	q := paperQuery()
	par, err := newParallel[int64](q, ring.Int{}, 4,
		func() (Maintainer[int64], error) {
			return New[int64](q, paperOrder(), ring.Int{}, countLift, Options[int64]{})
		})
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	if err := par.Init(); err != nil {
		t.Fatal(err)
	}
	st := data.NewStats()
	par.CollectStats(st)

	rng := rand.New(rand.NewSource(3))
	for step := 0; step < 4; step++ {
		for _, rd := range q.Rels {
			if err := par.ApplyDelta(rd.Name, randomDelta(rng, rd.Schema, 4, 3)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, rd := range q.Rels {
		rs := st.Lookup(rd.Name)
		if rs == nil || rs.DeltaTuples == 0 {
			t.Errorf("router stats missed relation %s: %+v", rd.Name, rs)
		}
	}
}
