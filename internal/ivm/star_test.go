package ivm

import (
	"math/rand"
	"testing"

	"fivm/internal/data"
	"fivm/internal/query"
	"fivm/internal/ring"
	"fivm/internal/vorder"
)

// TestStarQueryMultiSiblingStages is a regression test for the join-stage
// product scratch: a 4-relation star query gives delta plans three sibling
// stages, so a work-item payload produced at stage k (or aliased through the
// identity short-circuit) must survive stages k+1 and k+2. A buffer scheme
// that reuses stage slots too early corrupts exactly this shape. Identity
// payloads (count 1) exercise the alias path; the engine is checked against
// re-evaluation ground truth after every update.
func TestStarQueryMultiSiblingStages(t *testing.T) {
	q := query.MustNew("star", data.NewSchema("A"),
		query.RelDef{Name: "R", Schema: data.NewSchema("A", "B")},
		query.RelDef{Name: "S", Schema: data.NewSchema("A", "C")},
		query.RelDef{Name: "T", Schema: data.NewSchema("A", "D")},
		query.RelDef{Name: "U", Schema: data.NewSchema("A", "E")},
	)
	mkOrder := func() *vorder.Order {
		return vorder.MustNew(vorder.V("A", vorder.V("B"), vorder.V("C"), vorder.V("D"), vorder.V("E")))
	}
	for _, tc := range []struct {
		name string
		run  func(t *testing.T)
	}{
		{"Int", func(t *testing.T) {
			eng, err := New[int64](q, mkOrder(), ring.Int{}, countLift, Options[int64]{})
			if err != nil {
				t.Fatal(err)
			}
			ref, err := NewReEval[int64](q, mkOrder(), ring.Int{}, countLift)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range []Maintainer[int64]{eng, ref} {
				if err := m.Init(); err != nil {
					t.Fatal(err)
				}
			}
			rng := rand.New(rand.NewSource(11))
			rels := q.RelNames()
			for step := 0; step < 25; step++ {
				rel := rels[rng.Intn(len(rels))]
				rd, _ := q.Rel(rel)
				delta := randomDelta(rng, rd.Schema, 3, 1+rng.Intn(4))
				if err := eng.ApplyDelta(rel, delta); err != nil {
					t.Fatal(err)
				}
				if err := ref.ApplyDelta(rel, delta); err != nil {
					t.Fatal(err)
				}
				if got, want := eng.Result().String(), ref.Result().String(); got != want {
					t.Fatalf("step %d (%s): engine %s vs re-evaluation %s", step, rel, got, want)
				}
			}
		}},
		{"Cofactor", func(t *testing.T) {
			vars := q.Vars()
			idx := make(map[string]int, len(vars))
			for i, v := range vars {
				idx[v] = i
			}
			lift := func(v string, x data.Value) ring.Triple {
				return ring.LiftValue(idx[v], x.AsFloat())
			}
			cf := ring.Cofactor{}
			eng, err := New[ring.Triple](q, mkOrder(), cf, lift, Options[ring.Triple]{})
			if err != nil {
				t.Fatal(err)
			}
			ref, err := NewReEval[ring.Triple](q, mkOrder(), cf, lift)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range []Maintainer[ring.Triple]{eng, ref} {
				if err := m.Init(); err != nil {
					t.Fatal(err)
				}
			}
			rng := rand.New(rand.NewSource(12))
			rels := q.RelNames()
			for step := 0; step < 25; step++ {
				rel := rels[rng.Intn(len(rels))]
				rd, _ := q.Rel(rel)
				delta := data.NewRelation[ring.Triple](cf, rd.Schema)
				for i, n := 0, 1+rng.Intn(4); i < n; i++ {
					tup := make(data.Tuple, len(rd.Schema))
					for j := range tup {
						tup[j] = data.Int(int64(rng.Intn(3)))
					}
					// Mostly identity payloads, so the alias fast path of the
					// product scratch fires.
					delta.Merge(tup, ring.Triple{C: 1})
				}
				if err := eng.ApplyDelta(rel, delta); err != nil {
					t.Fatal(err)
				}
				if err := ref.ApplyDelta(rel, delta); err != nil {
					t.Fatal(err)
				}
				if got, want := eng.Result().String(), ref.Result().String(); got != want {
					t.Fatalf("step %d (%s): engine %s vs re-evaluation %s", step, rel, got, want)
				}
			}
		}},
	} {
		t.Run(tc.name, tc.run)
	}
}
