package ivm

import (
	"fmt"

	"fivm/internal/data"
)

// FactoredDelta is an update expressed as a product of factors with pairwise
// disjoint schemas whose union is the updated relation's schema (paper
// Section 5). A rank-1 change to a matrix relation A[X,Y] is the product of
// a column factor u[X] and a row factor v[Y]; an arbitrary update decomposes
// into a union (sequence) of such products.
type FactoredDelta[P any] struct {
	Factors []*data.Relation[P]
}

// Validate checks the factors have pairwise disjoint schemas covering the
// relation schema.
func (fd FactoredDelta[P]) Validate(relSchema data.Schema) error {
	var all data.Schema
	for _, f := range fd.Factors {
		if got := all.Intersect(f.Schema()); len(got) > 0 {
			return fmt.Errorf("ivm: factored delta factors overlap on %v", got)
		}
		all = all.Union(f.Schema())
	}
	if !all.SameSet(relSchema) {
		return fmt.Errorf("ivm: factored delta covers %v, relation has %v", all, relSchema)
	}
	return nil
}

// Expand multiplies the factors out into a plain delta relation over the
// given schema order.
func (fd FactoredDelta[P]) Expand(schema data.Schema) *data.Relation[P] {
	joined := data.JoinAll(fd.Factors...)
	return data.Project(joined, schema)
}

// ApplyFactoredDelta propagates a factorized update without materializing
// its Cartesian product: the Optimize step of Figure 4. At every view on the
// leaf-to-root path, each sibling view joins only the factors it shares
// variables with, and each bound variable is marginalized inside the single
// factor that contains it. Factors are expanded only when a materialized
// view on the path must absorb the delta.
//
// For the matrix chain A1·A2·A3 under a rank-1 change to A2 this yields the
// paper's O(n²) update (versus O(n³) for first-order IVM): the deltas stay
// products of vectors until the O(n²) merge into the root.
func (e *Engine[P]) ApplyFactoredDelta(rel string, fd FactoredDelta[P]) error {
	if !e.ready {
		return fmt.Errorf("ivm: ApplyFactoredDelta before Init")
	}
	if !e.updatable[rel] {
		return fmt.Errorf("ivm: relation %q is not updatable", rel)
	}
	leaf := e.root.LeafOf(rel)
	if leaf == nil {
		return fmt.Errorf("ivm: relation %q has no leaf in the view tree", rel)
	}
	if err := fd.Validate(leaf.Keys); err != nil {
		return err
	}
	if len(e.indLeaves[rel]) > 0 {
		// Indicator maintenance needs the expanded tuples anyway; fall back.
		return e.ApplyDelta(rel, fd.Expand(leaf.Keys))
	}
	plan := e.plans[leaf]
	if plan == nil {
		return fmt.Errorf("ivm: no delta plan for relation %q", rel)
	}

	factors := make([]*data.Relation[P], len(fd.Factors))
	copy(factors, fd.Factors)

	if v := e.views[leaf]; v != nil {
		v.MergeAllIndexed(fd.Expand(leaf.Keys))
	}

	for _, st := range plan.steps {
		// Join each sibling view with the factors it overlaps.
		for _, sib := range st.siblings {
			view := e.views[sib.node]
			factors = joinSiblingFactored(e, factors, view.Relation, view)
		}
		// Marginalize each bound variable inside its own factor.
		for _, mv := range st.margVars {
			found := false
			for i, f := range factors {
				if f.Schema().Contains(mv.name) {
					factors[i] = data.Marginalize(f, mv.name, e.lift)
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("ivm: variable %q not covered by any factor at %s", mv.name, st.node.Name())
			}
		}
		// Drop factors that became scalars of value One? They still carry
		// payload; keep them. Drop only empty factors: an empty factor
		// annihilates the whole delta.
		for _, f := range factors {
			if f.Len() == 0 {
				return nil
			}
		}
		factors = normalizeFactors(e, factors)

		if v := e.views[st.node]; v != nil {
			expanded := FactoredDelta[P]{Factors: factors}.Expand(st.node.Keys)
			if e.opts.PayloadTransform != nil {
				xf := data.NewRelation(e.ring, st.node.Keys)
				expanded.Iterate(func(t data.Tuple, p P) bool {
					xf.Merge(t, e.opts.PayloadTransform(st.node, p))
					return true
				})
				expanded = xf
			}
			v.MergeAllIndexed(expanded)
		}
	}
	return nil
}

// joinSiblingFactored joins a sibling view into the factor list: the factors
// sharing variables with the sibling are first combined (they must join the
// sibling together), then joined against the sibling through an index probe
// so the cost is proportional to the factor size plus the output size, not
// the sibling size.
func joinSiblingFactored[P any](e *Engine[P], factors []*data.Relation[P], sibling *data.Relation[P], indexed *data.IndexedRelation[P]) []*data.Relation[P] {
	var sharing []*data.Relation[P]
	var rest []*data.Relation[P]
	for _, f := range factors {
		if len(f.Schema().Intersect(sibling.Schema())) > 0 {
			sharing = append(sharing, f)
		} else {
			rest = append(rest, f)
		}
	}
	var joined *data.Relation[P]
	switch len(sharing) {
	case 0:
		// Disconnected sibling: it becomes a factor of its own.
		return append(rest, sibling.Clone())
	case 1:
		joined = sharing[0]
	default:
		joined = data.JoinAll(sharing...)
	}

	common := sibling.Schema().Intersect(joined.Schema())
	extra := sibling.Schema().Minus(common)
	ix := indexed.EnsureIndex(common)
	probe := data.MustProjector(joined.Schema(), common)
	extraProj := data.MustProjector(sibling.Schema(), extra)
	out := data.NewRelation(e.ring, joined.Schema().Union(extra))
	var buf []byte
	joined.Iterate(func(t data.Tuple, p P) bool {
		buf = probe.AppendKey(buf[:0], t)
		for en := range ix.ProbeBytes(buf).All() {
			tt := make(data.Tuple, 0, len(t)+extraProj.Len())
			tt = append(tt, t...)
			tt = extraProj.AppendTo(tt, en.Tuple)
			out.Merge(tt, e.ring.Mul(p, en.Payload))
		}
		return true
	})
	return append(rest, out)
}

// normalizeFactors merges empty-schema (scalar) factors into one and keeps
// the factor list's schemas disjoint.
func normalizeFactors[P any](e *Engine[P], factors []*data.Relation[P]) []*data.Relation[P] {
	var scalars []*data.Relation[P]
	var rest []*data.Relation[P]
	for _, f := range factors {
		if len(f.Schema()) == 0 {
			scalars = append(scalars, f)
		} else {
			rest = append(rest, f)
		}
	}
	if len(scalars) == 0 {
		return rest
	}
	s := scalars[0]
	for _, x := range scalars[1:] {
		s = data.Join(s, x)
	}
	if len(rest) == 0 {
		return []*data.Relation[P]{s}
	}
	// Fold the scalar into the smallest non-scalar factor.
	minI := 0
	for i, f := range rest {
		if f.Len() < rest[minI].Len() {
			minI = i
		}
	}
	rest[minI] = data.Join(s, rest[minI])
	return rest
}
