// Package ivm implements incremental view maintenance strategies over view
// trees: the paper's F-IVM engine (factorized higher-order IVM), plus the
// competitors it is evaluated against — first-order IVM (1-IVM), fully
// recursive higher-order IVM (DBToaster-style), and full re-evaluation.
//
// All strategies implement the Maintainer interface, so the benchmark
// harness and the differential tests drive them uniformly.
package ivm

import (
	"fmt"

	"fivm/internal/data"
	"fivm/internal/query"
	"fivm/internal/ring"
	"fivm/internal/viewtree"
	"fivm/internal/vorder"
)

// Maintainer is a strategy that maintains a query result under updates.
type Maintainer[P any] interface {
	// Load installs initial contents for a relation; must precede Init.
	Load(rel string, r *data.Relation[P]) error
	// Init computes the initial state from loaded relations.
	Init() error
	// ApplyDelta maintains the result under an update to one relation.
	// Deletions are encoded as entries with additively inverted payloads.
	ApplyDelta(rel string, delta *data.Relation[P]) error
	// ApplyDeltas maintains the result under a batch of updates to any mix
	// of relations, equivalent to applying them in order via ApplyDelta but
	// traversing each maintenance path once per batch.
	ApplyDeltas(batch []NamedDelta[P]) error
	// Result returns the maintained query result as a live handle: the
	// relation the strategy keeps updating in place. It is NOT safe to read
	// while another goroutine runs ApplyDelta/ApplyDeltas, and reads
	// interleaved with updates on one goroutine may observe each batch's
	// effects only as a whole.
	//
	// Deprecated: the live handle is a footgun outside the maintenance
	// goroutine. Read through Snapshot (or a serve.Reader pinned on one),
	// which is race-free and observes only whole applied batches. Result
	// remains for quiescent single-goroutine use and internal reductions.
	Result() *data.Relation[P]
	// Snapshot returns the latest published consistent snapshot: the state
	// after some whole applied batch, never mid-batch. The first call
	// enables publication and must come from the maintenance goroutine
	// (typically right after Init); afterwards every applied batch
	// publishes a fresh epoch and Snapshot is safe from any goroutine.
	Snapshot() *ViewSnapshot[P]
	// ViewCount reports how many views the strategy materializes.
	ViewCount() int
	// MemoryBytes estimates the bytes held by materialized state.
	MemoryBytes() int
}

// Options configures an F-IVM engine.
type Options[P any] struct {
	// Updatable lists the relations that may receive deltas; it determines
	// which views are materialized (Figure 5). Empty means all relations.
	Updatable []string
	// ComposeChains collapses single-child chains of bound marginalizations
	// into multi-variable views (the paper's wide-relation optimization).
	ComposeChains bool
	// Indicators extends the view tree with indicator projections for
	// cyclic queries (Figure 10, Appendix B).
	Indicators bool
	// MaterializeAll stores every inner view regardless of µ(τ, U). The
	// factorized result representation requires it: the representation is
	// the hierarchy of view payloads, so every view must exist even if no
	// delta ever probes it.
	MaterializeAll bool
	// PayloadTransform, when set, is applied to every freshly computed view
	// payload (and every delta payload). The factorized result
	// representation uses it to project relational payloads onto each
	// view's own variable. It must be linear: f(a+b) = f(a)+f(b).
	PayloadTransform func(n *viewtree.Node, p P) P

	// Stats supplies pre-collected statistics (the ANALYZE path) for
	// self-planning and the cost policies. When nil and an optimizer feature
	// is in use, the engine owns a fresh collector, seeds it from loaded
	// relations at Init, and keeps it current from the update stream.
	Stats *data.Stats
	// CostMaterialize replaces the structural materialization rule with the
	// cost-based policy: a probed view whose estimated footprint and merge
	// traffic exceed the cost of probing its children inline is not stored
	// (viewtree.CostMaterialize). Ignored when MaterializeAll or a payload
	// transform demands the full hierarchy.
	CostMaterialize bool
	// AutoReoptimize enables adaptive re-optimization: when observed
	// statistics drift past the thresholds mid-stream, the engine re-plans
	// and migrates, rebuilding only views whose definitions changed and
	// reusing matching materialized relations. It forces every leaf to be
	// materialized (migration rebuilds from leaf contents) and is
	// incompatible with Indicators and PayloadTransform.
	AutoReoptimize bool
	// NoLiveStats plans from the supplied (or Init-seeded) statistics and
	// then stops collecting: no leaf transition feeds, no per-delta rate
	// observations. Set it when statistics are maintained centrally — a
	// db.DB observes the coalesced stream once for all of its views, so
	// per-view collection would be redundant work. Incompatible with
	// AutoReoptimize, which needs a live collector to detect drift.
	NoLiveStats bool
	// ReoptEvery is the drift-check cadence in ApplyDelta calls (default 64).
	ReoptEvery int
	// DriftFactor is the per-relation cardinality growth/shrink factor that
	// triggers a re-plan check (default 2; delta-rate share shifts of 0.2
	// also trigger).
	DriftFactor float64
}

// Engine is the F-IVM maintainer: one view tree for all relations, with
// views materialized according to µ(τ, U) and deltas propagated along
// leaf-to-root paths with factorized (aggregate-pushing) computation.
type Engine[P any] struct {
	q    query.Query
	ring ring.Ring[P]
	lift data.LiftFunc[P]
	opts Options[P]

	root      *viewtree.Node
	order     *vorder.Order
	updatable map[string]bool
	updList   []string
	mat       map[*viewtree.Node]bool
	views     map[*viewtree.Node]*data.IndexedRelation[P]
	plans     map[*viewtree.Node]*deltaPlan[P]
	// snapshot catalog: stable view names and the epoch publisher.
	names  map[*viewtree.Node]string
	byName map[string]*viewtree.Node
	pub    publisher[P]
	// indicator machinery
	indLeaves map[string][]*viewtree.Node // base relation -> indicator leaves
	trackers  map[*viewtree.Node]*viewtree.IndicatorTracker

	bases      map[string]*data.Relation[P] // initial contents, dropped after Init
	ownedBases map[string]bool              // bases transferred via LoadOwned (adopted, not cloned)
	ready      bool

	// optimizer state
	stats        *data.Stats
	ownStats     bool          // stats created (and seeded) by the engine, not the caller
	pendingPlan  bool          // planning deferred to Init, after loaded data seeds the stats
	pendingOrder *vorder.Order // explicit order awaiting deferred planning (nil: choose)
	planSnap     data.StatsSnapshot
	ticks        int
	replans      int
}

// New builds an F-IVM engine for the query over the given variable order.
//
// The order may be nil: the engine then plans for itself with the
// cost-based optimizer (vorder.Choose). With opts.Stats set, planning
// happens immediately; otherwise it is deferred to Init, after the loaded
// relations have seeded the engine's own statistics collector (an engine
// that starts empty plans from structural defaults and can later correct
// itself via AutoReoptimize).
func New[P any](q query.Query, o *vorder.Order, r ring.Ring[P], lift data.LiftFunc[P], opts Options[P]) (*Engine[P], error) {
	e := &Engine[P]{
		q:         q,
		ring:      r,
		lift:      lift,
		opts:      opts,
		updatable: make(map[string]bool),
		bases:     make(map[string]*data.Relation[P]),
	}
	upd := opts.Updatable
	if len(upd) == 0 {
		upd = q.RelNames()
	}
	for _, name := range upd {
		if _, ok := q.Rel(name); !ok {
			return nil, fmt.Errorf("ivm: updatable relation %q not in query", name)
		}
		e.updatable[name] = true
	}
	e.updList = upd

	if opts.AutoReoptimize && (opts.Indicators || opts.PayloadTransform != nil) {
		return nil, fmt.Errorf("ivm: AutoReoptimize is incompatible with Indicators and PayloadTransform")
	}
	if opts.AutoReoptimize && opts.NoLiveStats {
		return nil, fmt.Errorf("ivm: AutoReoptimize needs live statistics (NoLiveStats set)")
	}
	e.stats = opts.Stats
	if e.stats == nil && (o == nil || opts.AutoReoptimize || opts.CostMaterialize) {
		e.stats = data.NewStats()
		e.ownStats = true
	}
	if opts.Stats == nil && (o == nil || opts.CostMaterialize) {
		// The engine-owned collector is still empty: defer planning to Init
		// so order choice and the cost-based materialization decision see
		// the loaded data instead of structural defaults.
		e.pendingOrder = o
		e.pendingPlan = true
		return e, nil
	}
	if o == nil {
		var err error
		if o, err = e.chooseOrder(); err != nil {
			return nil, err
		}
	}
	if err := e.plan(o); err != nil {
		return nil, err
	}
	return e, nil
}

// costModel builds the cost model over the engine's current statistics.
func (e *Engine[P]) costModel() *vorder.CostModel {
	return vorder.NewCostModel(e.q, e.stats, e.updList)
}

// chooseOrder runs the optimizer over the current statistics.
func (e *Engine[P]) chooseOrder() (*vorder.Order, error) {
	return vorder.Choose(e.q, vorder.ChooseOptions{Model: e.costModel()})
}

// plan compiles the engine's static machinery for a prepared-or-fresh
// variable order: the view tree, indicator extensions, the materialization
// decision, and one delta plan per updatable leaf. Any previous machinery is
// discarded (replan rebuilds the view contents afterwards).
func (e *Engine[P]) plan(o *vorder.Order) error {
	if err := o.Prepare(e.q); err != nil {
		return err
	}
	root, err := viewtree.Build(o, e.q)
	if err != nil {
		return err
	}
	root = viewtree.CollapseIdentical(root)
	if e.opts.ComposeChains {
		root = viewtree.ComposeChains(root)
	}
	e.order = o
	e.root = root
	e.views = make(map[*viewtree.Node]*data.IndexedRelation[P])
	e.plans = make(map[*viewtree.Node]*deltaPlan[P])
	e.indLeaves = make(map[string][]*viewtree.Node)
	e.trackers = make(map[*viewtree.Node]*viewtree.IndicatorTracker)

	if e.opts.Indicators {
		for _, leaf := range viewtree.AddIndicators(root, e.q) {
			e.indLeaves[leaf.Rel] = append(e.indLeaves[leaf.Rel], leaf)
			rd, _ := e.q.Rel(leaf.Rel)
			e.trackers[leaf] = viewtree.NewIndicatorTracker(rd.Schema, leaf.Keys)
		}
	}

	e.mat = e.materialization()
	e.nameViews()
	e.pub.invalidateNames()
	// Build delta plans for every leaf that can emit deltas.
	for _, leaf := range root.Leaves() {
		if !e.updatable[leaf.Rel] {
			continue
		}
		plan, err := e.buildPlan(leaf)
		if err != nil {
			return err
		}
		e.plans[leaf] = plan
	}
	return nil
}

// materialization generalizes Figure 5 to trees with indicator leaves: a
// non-root view is materialized iff some sibling subtree contains an
// updatable relation (equivalently, a delta can arrive at the parent
// through another child, which then probes this view). Without indicators
// this is exactly (rels(parent) \ rels(V)) ∩ U ≠ ∅, since sibling subtrees
// cover disjoint relations. The leaf of any relation feeding an indicator is
// force-materialized: its contents drive the indicator's presence counts.
func (e *Engine[P]) materialization() map[*viewtree.Node]bool {
	// Relations that can cause deltas to emerge from each subtree: the
	// subtree's own updatable relations plus updatable relations feeding
	// its indicator leaves.
	emits := make(map[*viewtree.Node]bool)
	var emitsOf func(n *viewtree.Node) bool
	emitsOf = func(n *viewtree.Node) bool {
		out := false
		if n.IsLeaf() {
			out = e.updatable[n.Rel]
		}
		for _, c := range n.Children {
			if emitsOf(c) {
				out = true
			}
		}
		emits[n] = out
		return out
	}
	emitsOf(e.root)

	mat := make(map[*viewtree.Node]bool)
	e.root.Walk(func(n *viewtree.Node) {
		if n.Parent() == nil || (e.opts.MaterializeAll && !n.IsLeaf()) {
			mat[n] = true
			return
		}
		for _, sib := range n.Parent().Children {
			if sib != n && emits[sib] {
				mat[n] = true
				return
			}
		}
		mat[n] = false
	})
	// Leaves backing indicator trackers must be stored.
	for rel, leaves := range e.indLeaves {
		if len(leaves) == 0 {
			continue
		}
		if leaf := e.root.LeafOf(rel); leaf != nil {
			mat[leaf] = true
		}
	}
	// Adaptive engines keep every leaf: migration rebuilds changed views
	// bottom-up from leaf contents.
	if e.opts.AutoReoptimize {
		for _, leaf := range e.root.Leaves() {
			if !leaf.Indicator {
				mat[leaf] = true
			}
		}
	}
	// Cost-based refinement: demote probed views whose storage costs more
	// than inline computation from their children (delta plans expand such
	// siblings in place). The full-hierarchy modes must keep every view.
	if e.opts.CostMaterialize && !e.opts.MaterializeAll && e.opts.PayloadTransform == nil && e.stats != nil {
		mat = viewtree.CostMaterialize(e.root, mat, e.updatable, e.costModel())
	}
	return mat
}

// Tree returns the engine's view tree.
func (e *Engine[P]) Tree() *viewtree.Node { return e.root }

// Materialized reports whether a view is materialized.
func (e *Engine[P]) Materialized(n *viewtree.Node) bool { return e.mat[n] }

// ViewOf returns the materialized contents of a view, or nil. The returned
// relation is a live handle that delta propagation keeps mutating: it is not
// safe to read while another goroutine applies deltas. Concurrent readers
// must pin an epoch via Snapshot and read ViewSnapshot.ViewOf / View.
func (e *Engine[P]) ViewOf(n *viewtree.Node) *data.Relation[P] {
	if v, ok := e.views[n]; ok {
		return v.Relation
	}
	return nil
}

// Load installs the initial contents of a relation (before Init). The
// relation's schema must match the query's definition. The relation stays
// owned by the caller: Init copies it into the leaf view.
func (e *Engine[P]) Load(rel string, r *data.Relation[P]) error {
	rd, ok := e.q.Rel(rel)
	if !ok {
		return fmt.Errorf("ivm: unknown relation %q", rel)
	}
	if !r.Schema().SameSet(rd.Schema) {
		return fmt.Errorf("ivm: relation %q schema %v does not match %v", rel, r.Schema(), rd.Schema)
	}
	e.bases[rel] = r
	return nil
}

// LoadOwned is Load with ownership transfer: the engine adopts the relation
// as the leaf view's backing storage instead of cloning it at Init (when its
// column order already matches the query's declared schema), so externally
// assembled bases — e.g. a db.DB backfilling a late-created view — are
// ingested without a second copy. The caller must not touch the relation
// afterwards.
func (e *Engine[P]) LoadOwned(rel string, r *data.Relation[P]) error {
	if err := e.Load(rel, r); err != nil {
		return err
	}
	if e.ownedBases == nil {
		e.ownedBases = make(map[string]bool)
	}
	e.ownedBases[rel] = true
	return nil
}

// Init evaluates all materialized views bottom-up from the loaded
// relations (missing relations are empty) and registers the secondary
// indexes that delta propagation will probe. An engine constructed with a
// nil order and no pre-collected statistics plans here, after seeding its
// collector from the loaded contents.
func (e *Engine[P]) Init() error {
	if e.ownStats {
		// Seed the engine-owned collector from the loaded contents, in each
		// relation's canonical column order so sketches line up with the
		// leaf views that keep them current afterwards.
		for rel, base := range e.bases {
			rd, _ := e.q.Rel(rel)
			if !base.Schema().Equal(rd.Schema) {
				base = data.Project(base, rd.Schema)
			}
			data.ObserveRelation(e.stats, rel, base)
		}
	}
	if e.pendingPlan {
		o := e.pendingOrder
		if o == nil {
			var err error
			if o, err = e.chooseOrder(); err != nil {
				return err
			}
		}
		if err := e.plan(o); err != nil {
			return err
		}
		e.pendingPlan = false
		e.pendingOrder = nil
	}

	var build func(n *viewtree.Node) *data.Relation[P]
	build = func(n *viewtree.Node) *data.Relation[P] {
		rel := e.evalFromChildren(n, build)
		if e.mat[n] {
			ir := data.NewIndexedRelation(rel)
			e.views[n] = ir
		}
		return rel
	}
	build(e.root)

	// Seed indicator trackers from loaded base contents.
	for rel, leaves := range e.indLeaves {
		base := e.bases[rel]
		if base == nil {
			continue
		}
		for _, leaf := range leaves {
			tr := e.trackers[leaf]
			base.Iterate(func(t data.Tuple, _ P) bool {
				tr.Update(t, 1)
				return true
			})
		}
	}

	// Register the probe indexes required by the delta plans.
	for _, plan := range e.plans {
		plan.registerIndexes(e)
	}
	if e.opts.NoLiveStats {
		// Planning is done; a centrally collected feed (the DB's) replaces
		// per-engine observation, so drop the collector from the hot path.
		e.stats = nil
	}
	e.attachLeafStats()
	if e.stats != nil {
		e.planSnap = e.stats.Snapshot()
	}
	e.bases = nil
	e.ownedBases = nil
	e.ready = true
	return nil
}

// attachLeafStats hooks the statistics collector into every stored leaf
// relation, so cardinality transitions and value sketches stay exact on the
// merge path at one nil-check of overhead.
func (e *Engine[P]) attachLeafStats() {
	if e.stats == nil {
		return
	}
	for _, leaf := range e.root.Leaves() {
		if leaf.Indicator {
			continue
		}
		if v := e.views[leaf]; v != nil {
			v.CollectStats(e.stats.Rel(leaf.Rel, leaf.Keys))
		}
	}
}

// evalFromChildren computes a view's contents from its children via the
// supplied recursive evaluator.
func (e *Engine[P]) evalFromChildren(n *viewtree.Node, eval func(*viewtree.Node) *data.Relation[P]) *data.Relation[P] {
	if n.IsLeaf() {
		if n.Indicator {
			return e.indicatorContents(n)
		}
		if base, ok := e.bases[n.Rel]; ok {
			// Normalize to the declared schema order.
			rd, _ := e.q.Rel(n.Rel)
			if base.Schema().Equal(rd.Schema) {
				if e.ownedBases[n.Rel] {
					// Ownership was transferred via LoadOwned: adopt the
					// relation as the leaf's backing storage, no copy.
					return base
				}
				return base.Clone()
			}
			return data.Project(base, rd.Schema)
		}
		rd, _ := e.q.Rel(n.Rel)
		return data.NewRelation(e.ring, rd.Schema)
	}
	rels := make([]*data.Relation[P], 0, len(n.Children))
	for _, c := range n.Children {
		rels = append(rels, eval(c))
	}
	joined := data.JoinAll(rels...)
	agg := data.MarginalizeVars(joined, joined.Schema().Intersect(n.Marg), e.lift)
	out := data.Project(agg, n.Keys)
	if e.opts.PayloadTransform != nil {
		xf := data.NewRelation(e.ring, n.Keys)
		out.Iterate(func(t data.Tuple, p P) bool {
			xf.Merge(t, e.opts.PayloadTransform(n, p))
			return true
		})
		out = xf
	}
	return out
}

// indicatorContents builds the current relation of an indicator leaf from
// its tracker: every live key maps to the multiplicative identity.
func (e *Engine[P]) indicatorContents(leaf *viewtree.Node) *data.Relation[P] {
	out := data.NewRelation(e.ring, leaf.Keys)
	base := e.bases[leaf.Rel]
	if base == nil {
		return out
	}
	one := e.ring.One()
	proj := data.MustProjector(base.Schema(), leaf.Keys)
	base.Iterate(func(t data.Tuple, _ P) bool {
		out.Set(proj.Apply(t), one)
		return true
	})
	return out
}

// Result returns the root view: the maintained query result, as a live
// handle that updates mutate in place. It is not safe to read while another
// goroutine applies deltas.
//
// Deprecated: read through Snapshot (or a serve.Reader pinned on one)
// instead; the live handle is only safe quiescently, on the maintenance
// goroutine.
func (e *Engine[P]) Result() *data.Relation[P] {
	if v, ok := e.views[e.root]; ok {
		return v.Relation
	}
	return data.NewRelation(e.ring, e.root.Keys)
}

// ViewCount returns the number of materialized views.
func (e *Engine[P]) ViewCount() int {
	n := 0
	for _, m := range e.mat {
		if m {
			n++
		}
	}
	return n
}

// MemoryBytes estimates the heap bytes held by all materialized views,
// using the ring's Sized implementation when available.
func (e *Engine[P]) MemoryBytes() int {
	total := 0
	for _, v := range e.views {
		total += relationBytes(v.Relation)
	}
	return total
}

// relationBytes estimates the footprint of a relation's entries.
func relationBytes[P any](r *data.Relation[P]) int {
	sized, _ := r.Ring().(ring.Sized[P])
	total := 48
	r.Iterate(func(t data.Tuple, p P) bool {
		total += 48 + len(t)*24
		if sized != nil {
			total += sized.Bytes(p)
		} else {
			total += 16
		}
		return true
	})
	return total
}

// ApplyDelta propagates an update to one relation along its leaf-to-root
// path (Figure 4), maintaining every materialized view on the way, then
// propagates any induced indicator deltas in sequence. The update counts as
// one batch: with publication enabled, a fresh snapshot epoch is published
// at the end.
func (e *Engine[P]) ApplyDelta(rel string, delta *data.Relation[P]) error {
	if err := e.applyDelta(rel, delta); err != nil {
		return err
	}
	e.maybePublish()
	return nil
}

// applyDelta is ApplyDelta without the per-batch snapshot publication, so
// batched updates publish once per batch instead of once per relation.
func (e *Engine[P]) applyDelta(rel string, delta *data.Relation[P]) error {
	if !e.ready {
		return fmt.Errorf("ivm: ApplyDelta before Init")
	}
	if !e.updatable[rel] {
		return fmt.Errorf("ivm: relation %q is not updatable", rel)
	}
	leaf := e.root.LeafOf(rel)
	if leaf == nil {
		return fmt.Errorf("ivm: relation %q has no leaf in the view tree", rel)
	}
	plan := e.plans[leaf]
	if plan == nil {
		return fmt.Errorf("ivm: no delta plan for relation %q", rel)
	}

	// Normalize the delta to the leaf's schema order.
	if !delta.Schema().SameSet(leaf.Keys) {
		return fmt.Errorf("ivm: delta schema %v does not match %v", delta.Schema(), leaf.Keys)
	}
	if !delta.Schema().Equal(leaf.Keys) {
		delta = data.Project(delta, leaf.Keys)
	}

	// Derive indicator deltas from the leaf's presence transitions before
	// merging (the tracker needs appear/disappear events, which we observe
	// against the pre-merge leaf view when the leaf is stored).
	indDeltas := e.indicatorDeltas(rel, delta)

	if e.stats != nil {
		// Update-rate signal (and, for unstored leaves, approximate
		// cardinality): stored leaves report exact transitions themselves.
		data.ObserveDeltaRelation(e.stats, rel, leaf.Keys, delta)
	}

	if err := plan.run(e, delta); err != nil {
		return err
	}
	for _, id := range indDeltas {
		if err := id.plan.run(e, id.delta); err != nil {
			return err
		}
	}
	if e.opts.AutoReoptimize {
		return e.maybeReoptimize()
	}
	return nil
}

type indicatorDelta[P any] struct {
	plan  *deltaPlan[P]
	delta *data.Relation[P]
}

// indicatorDeltas computes the deltas of rel's indicator projections caused
// by applying delta, updating the trackers.
func (e *Engine[P]) indicatorDeltas(rel string, delta *data.Relation[P]) []indicatorDelta[P] {
	leaves := e.indLeaves[rel]
	if len(leaves) == 0 {
		return nil
	}
	baseLeaf := e.root.LeafOf(rel)
	base := e.views[baseLeaf]
	if base == nil {
		panic(fmt.Sprintf("ivm: indicator base %q not materialized", rel))
	}
	// Determine presence transitions per delta tuple: present before vs
	// after merging this delta entry's payload. The merge itself happens in
	// the main plan run; here we only simulate payload sums.
	type transition struct {
		t data.Tuple
		d int64 // +1 appear, -1 disappear
	}
	var transitions []transition
	delta.Iterate(func(t data.Tuple, p P) bool {
		old, had := base.Get(t)
		var now P
		if had {
			now = e.ring.Add(old, p)
		} else {
			now = p
		}
		hasNow := !e.ring.IsZero(now)
		switch {
		case !had && hasNow:
			transitions = append(transitions, transition{t: t, d: 1})
		case had && !hasNow:
			transitions = append(transitions, transition{t: t, d: -1})
		}
		return true
	})

	var out []indicatorDelta[P]
	for _, leaf := range leaves {
		tr := e.trackers[leaf]
		d := data.NewRelation(e.ring, leaf.Keys)
		one := e.ring.One()
		for _, x := range transitions {
			pt, flip := tr.Update(x.t, x.d)
			switch flip {
			case 1:
				d.Merge(pt, one)
			case -1:
				d.Merge(pt, e.ring.Neg(one))
			}
		}
		if d.Len() == 0 {
			continue
		}
		plan := e.plans[leaf]
		if plan == nil {
			p, err := e.buildPlan(leaf)
			if err != nil {
				panic(err)
			}
			e.plans[leaf] = p
			p.registerIndexes(e)
			plan = p
		}
		out = append(out, indicatorDelta[P]{plan: plan, delta: d})
	}
	return out
}
