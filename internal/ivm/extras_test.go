package ivm

import (
	"math/rand"
	"strings"
	"testing"

	"fivm/internal/data"
	"fivm/internal/datasets"
	"fivm/internal/query"
	"fivm/internal/ring"
	"fivm/internal/vorder"
)

// TestLoop4WithChordIndicators covers the Appendix B discussion of the
// loop-4 query with a chord: the chord relation closes two triangles, and
// indicator projections must keep maintenance correct.
func TestLoop4WithChordIndicators(t *testing.T) {
	q := query.MustNew("loop4", nil,
		query.RelDef{Name: "R1", Schema: data.NewSchema("A", "B")},
		query.RelDef{Name: "R2", Schema: data.NewSchema("B", "C")},
		query.RelDef{Name: "R3", Schema: data.NewSchema("C", "D")},
		query.RelDef{Name: "R4", Schema: data.NewSchema("D", "A")},
		query.RelDef{Name: "Chord", Schema: data.NewSchema("A", "C")},
	)
	mkOrder := func() *vorder.Order {
		o, err := vorder.Build(q)
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	rng := rand.New(rand.NewSource(31))

	e, err := New[int64](q, mkOrder(), ring.Int{}, countLift, Options[int64]{Indicators: true})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewReEval[int64](q, mkOrder(), ring.Int{}, countLift)
	if err != nil {
		t.Fatal(err)
	}
	for _, rd := range q.Rels {
		base := randomDelta(rng, rd.Schema, 4, 8)
		e.Load(rd.Name, base.Clone())
		ref.Load(rd.Name, base.Clone())
	}
	if err := e.Init(); err != nil {
		t.Fatal(err)
	}
	if err := ref.Init(); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 40; step++ {
		rel := q.Rels[rng.Intn(len(q.Rels))]
		delta := randomDelta(rng, rel.Schema, 4, 1+rng.Intn(2))
		if err := e.ApplyDelta(rel.Name, delta.Clone()); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if err := ref.ApplyDelta(rel.Name, delta.Clone()); err != nil {
			t.Fatal(err)
		}
		if !e.Result().Equal(ref.Result(), eqInt) {
			t.Fatalf("step %d (%s): %v vs %v", step, rel.Name, e.Result(), ref.Result())
		}
	}
}

// TestSelfJoinViaAliases documents the paper's treatment of repeated
// relations: a self-join is expressed with one alias per occurrence, and an
// update to the underlying relation is applied to each alias in sequence.
// Here: counting length-2 paths E(A,B) ⋈ E(B,C) in a digraph.
func TestSelfJoinViaAliases(t *testing.T) {
	q := query.MustNew("paths2", nil,
		query.RelDef{Name: "E1", Schema: data.NewSchema("A", "B")},
		query.RelDef{Name: "E2", Schema: data.NewSchema("B", "C")},
	)
	o := vorder.MustNew(vorder.V("B", vorder.V("A"), vorder.V("C")))
	e, err := New[int64](q, o, ring.Int{}, countLift, Options[int64]{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Init(); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(32))
	type edge [2]int64
	edges := map[edge]int64{}
	count2Paths := func() int64 {
		var n int64
		for e1, m1 := range edges {
			for e2, m2 := range edges {
				if e1[1] == e2[0] {
					n += m1 * m2
				}
			}
		}
		return n
	}
	for step := 0; step < 40; step++ {
		a, b := int64(rng.Intn(5)), int64(rng.Intn(5))
		m := int64(1)
		if edges[edge{a, b}] > 0 && rng.Intn(3) == 0 {
			m = -1
		}
		edges[edge{a, b}] += m
		if edges[edge{a, b}] == 0 {
			delete(edges, edge{a, b})
		}

		// Apply the same physical update to both aliases, in sequence.
		d1 := data.NewRelation[int64](ring.Int{}, data.NewSchema("A", "B"))
		d1.Merge(data.Ints(a, b), m)
		d2 := data.NewRelation[int64](ring.Int{}, data.NewSchema("B", "C"))
		d2.Merge(data.Ints(a, b), m)
		if err := e.ApplyDelta("E1", d1); err != nil {
			t.Fatal(err)
		}
		if err := e.ApplyDelta("E2", d2); err != nil {
			t.Fatal(err)
		}

		got, _ := e.Result().Get(data.Tuple{})
		if want := count2Paths(); got != want {
			t.Fatalf("step %d: 2-path count %d, want %d", step, got, want)
		}
	}
}

// TestDescribe checks the maintenance-schema rendering.
func TestDescribe(t *testing.T) {
	q := paperQuery()
	e, err := New[int64](q, paperOrder(), ring.Int{}, countLift, Options[int64]{Updatable: []string{"T"}})
	if err != nil {
		t.Fatal(err)
	}
	s := e.Describe()
	for _, frag := range []string{"view tree:", "*V@A[]", "delta plan for T:", "⊕[D]", "materialized"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Describe missing %q:\n%s", frag, s)
		}
	}
	// For updates to T, the plan must probe the S-view and the R-view.
	if !strings.Contains(s, "V@E[A,C]") || !strings.Contains(s, "V@B[A]") {
		t.Errorf("Describe should mention sibling views:\n%s", s)
	}
}

// TestRecursiveRestrictedUpdatable checks the DBT baseline with a
// restricted updatable set builds a smaller hierarchy and stays correct.
func TestRecursiveRestrictedUpdatable(t *testing.T) {
	q := paperQuery()
	full, _ := NewRecursive[int64](q, ring.Int{}, countLift, nil)
	one, _ := NewRecursive[int64](q, ring.Int{}, countLift, []string{"T"})
	if one.ViewCount() >= full.ViewCount() {
		t.Errorf("restricted hierarchy (%d views) should be smaller than full (%d)", one.ViewCount(), full.ViewCount())
	}

	rng := rand.New(rand.NewSource(33))
	ref, _ := NewReEval[int64](q, paperOrder(), ring.Int{}, countLift)
	for _, rd := range q.Rels {
		base := randomDelta(rng, rd.Schema, 4, 8)
		one.Load(rd.Name, base.Clone())
		ref.Load(rd.Name, base.Clone())
	}
	if err := one.Init(); err != nil {
		t.Fatal(err)
	}
	if err := ref.Init(); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 20; step++ {
		delta := randomDelta(rng, data.NewSchema("C", "D"), 4, 1+rng.Intn(3))
		if err := one.ApplyDelta("T", delta.Clone()); err != nil {
			t.Fatal(err)
		}
		if err := ref.ApplyDelta("T", delta.Clone()); err != nil {
			t.Fatal(err)
		}
		if !one.Result().Equal(ref.Result(), eqInt) {
			t.Fatalf("step %d diverged", step)
		}
	}
	// Updates outside the updatable set are rejected.
	if err := one.ApplyDelta("R", randomDelta(rng, data.NewSchema("A", "B"), 3, 1)); err == nil {
		t.Error("update to non-updatable relation should fail")
	}
}

// TestTriggerSet exercises the trigger dispatcher over plain and windowed
// streams.
func TestTriggerSet(t *testing.T) {
	q := paperQuery()
	e, err := New[int64](q, paperOrder(), ring.Int{}, countLift, Options[int64]{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Init(); err != nil {
		t.Fatal(err)
	}
	ts := NewTriggers[int64](e, q, ring.Int{}, func(string, data.Tuple) int64 { return 1 })

	if err := ts.Insert("R", data.Ints(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := ts.Insert("S", data.Ints(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := ts.Insert("T", data.Ints(2, 4)); err != nil {
		t.Fatal(err)
	}
	if p, _ := e.Result().Get(data.Tuple{}); p != 1 {
		t.Fatalf("count = %d, want 1", p)
	}
	if err := ts.Delete("R", data.Ints(1, 1)); err != nil {
		t.Fatal(err)
	}
	if p, _ := e.Result().Get(data.Tuple{}); p != 0 {
		t.Fatalf("count after delete = %d, want 0", p)
	}
	if err := ts.Insert("Nope"); err == nil {
		t.Error("unknown relation should fail")
	}
	if ts.Maintainer() == nil {
		t.Error("Maintainer accessor")
	}

	// Windowed batches negate deletes.
	wb := []struct {
		del bool
		tup data.Tuple
	}{{false, data.Ints(2, 2)}, {true, data.Ints(2, 2)}}
	for _, w := range wb {
		b := datasets.WindowedBatch{Batch: datasets.Batch{Rel: "R", Tuples: []data.Tuple{w.tup}}, Delete: w.del}
		if err := ts.ApplyWindowed(b); err != nil {
			t.Fatal(err)
		}
	}
	if p, _ := e.Result().Get(data.Tuple{}); p != 0 {
		t.Fatalf("count after windowed insert+delete = %d, want 0", p)
	}
}

// TestFactoredDeltaDisconnectedQuery covers the Cartesian-product case: a
// sibling sharing no variables with any delta factor becomes a factor of
// its own (the clone path in joinSiblingFactored).
func TestFactoredDeltaDisconnectedQuery(t *testing.T) {
	q := query.MustNew("cart", data.NewSchema("A", "B"),
		query.RelDef{Name: "R", Schema: data.NewSchema("A")},
		query.RelDef{Name: "S", Schema: data.NewSchema("B")},
	)
	o, err := vorder.Build(q)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New[int64](q, o, ring.Int{}, countLift, Options[int64]{Updatable: []string{"R"}})
	if err != nil {
		t.Fatal(err)
	}
	o2, _ := vorder.Build(q)
	ref, err := NewReEval[int64](q, o2, ring.Int{}, countLift)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(44))
	for _, rd := range q.Rels {
		base := randomDelta(rng, rd.Schema, 4, 5)
		e.Load(rd.Name, base.Clone())
		ref.Load(rd.Name, base.Clone())
	}
	if err := e.Init(); err != nil {
		t.Fatal(err)
	}
	if err := ref.Init(); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 10; step++ {
		u := data.NewRelation[int64](ring.Int{}, data.NewSchema("A"))
		u.Merge(data.Ints(int64(rng.Intn(4))), int64(1+rng.Intn(2)))
		fd := FactoredDelta[int64]{Factors: []*data.Relation[int64]{u}}
		if err := e.ApplyFactoredDelta("R", fd); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if err := ref.ApplyDelta("R", u.Clone()); err != nil {
			t.Fatal(err)
		}
		if !e.Result().Equal(ref.Result(), eqInt) {
			t.Fatalf("step %d: %v vs %v", step, e.Result(), ref.Result())
		}
	}
}
