package ivm

import (
	"math"
	"math/rand"
	"testing"

	"fivm/internal/data"
	"fivm/internal/ring"
)

// floatDeltaR builds a random float multiplicity delta.
func floatDeltaR(rng *rand.Rand, schema data.Schema, dom, n int) *data.Relation[float64] {
	d := data.NewRelation[float64](ring.Float{}, schema)
	for i := 0; i < n; i++ {
		t := make(data.Tuple, len(schema))
		for j := range t {
			t[j] = data.Int(int64(rng.Intn(dom)))
		}
		d.Merge(t, 1)
	}
	return d
}

// TestMultiStrategiesAgree drives the per-aggregate scalar strategies (the
// paper's DBT and 1-IVM cofactor competitors) and checks every aggregate
// against the shared-computation cofactor engine.
func TestMultiStrategiesAgree(t *testing.T) {
	q := paperQuery()
	rng := rand.New(rand.NewSource(41))
	vars := q.Vars()
	idx := make(map[string]int, len(vars))
	for i, v := range vars {
		idx[v] = i
	}
	specs := CofactorAggSpecs(vars)

	mfo, err := NewMultiFirstOrder(q, paperOrder(), specs)
	if err != nil {
		t.Fatal(err)
	}
	mrec, err := NewMultiRecursive(q, specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	compound, err := New[ring.Triple](q, paperOrder(), ring.Cofactor{},
		func(v string, x data.Value) ring.Triple { return ring.LiftValue(idx[v], x.AsFloat()) },
		Options[ring.Triple]{})
	if err != nil {
		t.Fatal(err)
	}
	// Load shared initial data.
	for _, rd := range q.Rels {
		base := floatDeltaR(rng, rd.Schema, 3, 6)
		if err := mfo.Load(rd.Name, base.Clone()); err != nil {
			t.Fatal(err)
		}
		if err := mrec.Load(rd.Name, base.Clone()); err != nil {
			t.Fatal(err)
		}
		tb := data.NewRelation[ring.Triple](ring.Cofactor{}, rd.Schema)
		base.Iterate(func(tup data.Tuple, m float64) bool {
			tb.Merge(tup, ring.Triple{C: m})
			return true
		})
		if err := compound.Load(rd.Name, tb); err != nil {
			t.Fatal(err)
		}
	}
	for _, init := range []func() error{mfo.Init, mrec.Init, compound.Init} {
		if err := init(); err != nil {
			t.Fatal(err)
		}
	}

	checkAll := func(step int) {
		tr, _ := compound.Result().Get(data.Tuple{})
		for i, s := range specs {
			var want float64
			var degVars []string
			for v, d := range s.Degrees {
				for k := 0; k < d; k++ {
					degVars = append(degVars, v)
				}
			}
			switch len(degVars) {
			case 0:
				want = tr.Count()
			case 1:
				want = tr.SumOf(idx[degVars[0]])
			default:
				want = tr.QuadOf(idx[degVars[0]], idx[degVars[1]])
			}
			for name, results := range map[string][]*data.Relation[float64]{
				"1-IVM": mfo.Results(), "DBT": mrec.Results(),
			} {
				got, _ := results[i].Get(data.Tuple{})
				if math.Abs(got-want) > 1e-6 {
					t.Fatalf("step %d %s agg %v: %v, want %v", step, name, s.Degrees, got, want)
				}
			}
		}
	}
	checkAll(-1)

	for step := 0; step < 8; step++ {
		rel := q.RelNames()[rng.Intn(3)]
		rd, _ := q.Rel(rel)
		delta := floatDeltaR(rng, rd.Schema, 3, 1+rng.Intn(2))
		if err := mfo.ApplyDelta(rel, delta.Clone()); err != nil {
			t.Fatal(err)
		}
		if err := mrec.ApplyDelta(rel, delta.Clone()); err != nil {
			t.Fatal(err)
		}
		td := data.NewRelation[ring.Triple](ring.Cofactor{}, rd.Schema)
		delta.Iterate(func(tup data.Tuple, m float64) bool {
			td.Merge(tup, ring.Triple{C: m})
			return true
		})
		if err := compound.ApplyDelta(rel, td); err != nil {
			t.Fatal(err)
		}
		checkAll(step)
	}

	// Bookkeeping methods.
	if mfo.ViewCount() <= len(q.Rels) {
		t.Error("MultiFirstOrder view count")
	}
	if mrec.ViewCount() <= mfo.ViewCount() {
		t.Error("MultiRecursive should have far more views")
	}
	if mfo.MemoryBytes() <= 0 || mrec.MemoryBytes() <= 0 {
		t.Error("memory accounting")
	}
	if mfo.Result() == nil || mrec.Result() == nil {
		t.Error("Result accessors")
	}
}

// TestNaiveReEvalAgrees checks the unfactorized re-evaluation baseline
// (DBT-RE) against factorized re-evaluation.
func TestNaiveReEvalAgrees(t *testing.T) {
	q := paperQuery("A")
	rng := rand.New(rand.NewSource(42))
	naive := NewNaiveReEval[int64](q, ring.Int{}, valueLift)
	ref, err := NewReEval[int64](q, paperOrder(), ring.Int{}, valueLift)
	if err != nil {
		t.Fatal(err)
	}
	for _, rd := range q.Rels {
		base := randomDelta(rng, rd.Schema, 3, 5)
		naive.Load(rd.Name, base.Clone())
		ref.Load(rd.Name, base.Clone())
	}
	if err := naive.Init(); err != nil {
		t.Fatal(err)
	}
	if err := ref.Init(); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 15; step++ {
		rel := q.RelNames()[rng.Intn(3)]
		rd, _ := q.Rel(rel)
		delta := randomDelta(rng, rd.Schema, 3, 1+rng.Intn(3))
		if err := naive.ApplyDelta(rel, delta.Clone()); err != nil {
			t.Fatal(err)
		}
		if err := ref.ApplyDelta(rel, delta.Clone()); err != nil {
			t.Fatal(err)
		}
		if !naive.Result().Equal(ref.Result(), eqInt) {
			t.Fatalf("step %d: naive %v vs factorized %v", step, naive.Result(), ref.Result())
		}
	}
	if naive.ViewCount() != 4 {
		t.Errorf("ViewCount = %d", naive.ViewCount())
	}
	if naive.MemoryBytes() <= 0 {
		t.Error("MemoryBytes")
	}
	if err := naive.ApplyDelta("nope", nil); err == nil {
		t.Error("unknown relation should fail")
	}
	if err := naive.Load("nope", nil); err == nil {
		t.Error("unknown relation should fail")
	}
}

// TestCofactorAggSpecsCount checks the 1 + m + m(m+1)/2 aggregate count the
// paper reports (990 for Retailer's 43 variables, 406 for Housing's 27).
func TestCofactorAggSpecsCount(t *testing.T) {
	for _, tc := range []struct{ m, want int }{{43, 990}, {27, 406}, {3, 10}} {
		vars := make(data.Schema, tc.m)
		for i := range vars {
			vars[i] = string(rune('a'+i%26)) + string(rune('0'+i/26))
		}
		if got := len(CofactorAggSpecs(vars)); got != tc.want {
			t.Errorf("m=%d: %d aggregates, want %d", tc.m, got, tc.want)
		}
	}
}
