package ivm

import (
	"fmt"
	"sort"
	"strings"

	"fivm/internal/viewtree"
)

// Describe renders the engine's maintenance schema: the view tree with
// materialization marks, and for each updatable relation the compiled
// leaf-to-root delta plan (which sibling views each step probes and which
// variables it marginalizes) — the textual form of the paper's Figure 4
// delta trees.
func (e *Engine[P]) Describe() string {
	var b strings.Builder
	b.WriteString("view tree:\n")
	var rec func(n *viewtree.Node, depth int)
	rec = func(n *viewtree.Node, depth int) {
		mark := " "
		if e.mat[n] {
			mark = "*"
		}
		fmt.Fprintf(&b, "  %s%s%s", strings.Repeat("  ", depth), mark, n.Name())
		if len(n.Marg) > 0 {
			fmt.Fprintf(&b, " ⊕%v", n.Marg)
		}
		b.WriteString("\n")
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(e.root, 0)
	b.WriteString("  (* = materialized)\n")

	var leaves []*viewtree.Node
	for leaf := range e.plans {
		leaves = append(leaves, leaf)
	}
	sort.Slice(leaves, func(i, j int) bool { return leaves[i].Name() < leaves[j].Name() })
	for _, leaf := range leaves {
		plan := e.plans[leaf]
		fmt.Fprintf(&b, "delta plan for %s:\n", leaf.Name())
		for _, st := range plan.steps {
			fmt.Fprintf(&b, "  δ%s :=", st.node.Name())
			for _, sib := range st.siblings {
				op := "probe"
				if sib.full {
					op = "lookup"
				}
				fmt.Fprintf(&b, " %s %s on %v;", op, sib.node.Name(), sib.common)
			}
			if len(st.margVars) > 0 {
				names := make([]string, len(st.margVars))
				for i, mv := range st.margVars {
					names[i] = mv.name
				}
				fmt.Fprintf(&b, " ⊕[%s]", strings.Join(names, ","))
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
