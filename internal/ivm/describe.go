package ivm

import (
	"fmt"
	"sort"
	"strings"

	"fivm/internal/viewtree"
)

// Describe renders the engine's maintenance schema: the view tree with
// materialization marks, and for each updatable relation the compiled
// leaf-to-root delta plan (which sibling views each step probes and which
// variables it marginalizes) — the textual form of the paper's Figure 4
// delta trees.
func (e *Engine[P]) Describe() string {
	var b strings.Builder
	b.WriteString("view tree:\n")
	var rec func(n *viewtree.Node, depth int)
	rec = func(n *viewtree.Node, depth int) {
		mark := " "
		if e.mat[n] {
			mark = "*"
		}
		fmt.Fprintf(&b, "  %s%s%s", strings.Repeat("  ", depth), mark, n.Name())
		if len(n.Marg) > 0 {
			fmt.Fprintf(&b, " ⊕%v", n.Marg)
		}
		b.WriteString("\n")
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(e.root, 0)
	b.WriteString("  (* = materialized)\n")
	return e.describePlans(&b)
}

// Explain renders the optimizer's view of the engine: the chosen variable
// order and its width, the estimated cost breakdown, and — per view — the
// estimated versus actual size and the materialization decision. Call after
// Init (actual sizes come from the materialized state).
func (e *Engine[P]) Explain() string {
	var b strings.Builder
	if e.root == nil {
		return "explain: engine not planned yet (self-planning happens at Init)\n"
	}
	m := e.costModel()
	fmt.Fprintf(&b, "order: %s\n", e.order.String())
	fmt.Fprintf(&b, "width: %d\n", e.order.Width(e.q))
	fmt.Fprintf(&b, "estimated cost: %s\n", m.Cost(e.order))
	if e.replans > 0 {
		fmt.Fprintf(&b, "replans: %d\n", e.replans)
	}
	b.WriteString("views (* = materialized, est -> actual entries):\n")
	var rec func(n *viewtree.Node, depth int)
	rec = func(n *viewtree.Node, depth int) {
		mark := " "
		if e.mat[n] {
			mark = "*"
		}
		actual := "-"
		if v, ok := e.views[n]; ok {
			actual = fmt.Sprintf("%d", v.Len())
		}
		fmt.Fprintf(&b, "  %s%s%s  est %.0f -> %s", strings.Repeat("  ", depth), mark, n.Name(),
			m.ViewSizeOver(n.Keys, n.Rels), actual)
		if len(n.Marg) > 0 {
			fmt.Fprintf(&b, "  ⊕%v", n.Marg)
		}
		b.WriteString("\n")
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(e.root, 0)
	return b.String()
}

// describePlans renders the compiled delta plans (shared by Describe).
func (e *Engine[P]) describePlans(b *strings.Builder) string {

	var leaves []*viewtree.Node
	for leaf := range e.plans {
		leaves = append(leaves, leaf)
	}
	sort.Slice(leaves, func(i, j int) bool { return leaves[i].Name() < leaves[j].Name() })
	for _, leaf := range leaves {
		plan := e.plans[leaf]
		fmt.Fprintf(b, "delta plan for %s:\n", leaf.Name())
		for _, st := range plan.steps {
			fmt.Fprintf(b, "  δ%s :=", st.node.Name())
			for _, sib := range st.siblings {
				op := "probe"
				if sib.full {
					op = "lookup"
				}
				fmt.Fprintf(b, " %s %s on %v;", op, sib.node.Name(), sib.common)
			}
			if len(st.margVars) > 0 {
				names := make([]string, len(st.margVars))
				for i, mv := range st.margVars {
					names[i] = mv.name
				}
				fmt.Fprintf(b, " ⊕[%s]", strings.Join(names, ","))
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
