package ivm

import (
	"fmt"
	"math/rand"
	"testing"

	"fivm/internal/data"
	"fivm/internal/query"
	"fivm/internal/ring"
)

// parallelStrategies enumerates the maintainer factories the parallel
// wrapper is differentially tested over.
func parallelStrategies[P any](t *testing.T, q query.Query, r ring.Ring[P], lift data.LiftFunc[P]) map[string]func() (Maintainer[P], error) {
	t.Helper()
	return map[string]func() (Maintainer[P], error){
		"F-IVM": func() (Maintainer[P], error) {
			return New[P](q, paperOrder(), r, lift, Options[P]{})
		},
		"1-IVM": func() (Maintainer[P], error) {
			return NewFirstOrder[P](q, paperOrder(), r, lift)
		},
		"DBT": func() (Maintainer[P], error) {
			return NewRecursive[P](q, r, lift, nil)
		},
		"RE-EVAL": func() (Maintainer[P], error) {
			return NewReEval[P](q, paperOrder(), r, lift)
		},
	}
}

// runParallelEquivalence drives a sharded parallel maintainer (workers in
// {1, 2, 8}) and a sequential instance of each strategy through identical
// random batches — mixing sharded and broadcast relations, inserts and
// deletes, and preloaded contents — and demands byte-identical rendered
// results after every batch.
func runParallelEquivalence[P any](t *testing.T, q query.Query, r ring.Ring[P], lift data.LiftFunc[P],
	mkDelta func(rng *rand.Rand, schema data.Schema) *data.Relation[P]) {
	t.Helper()
	for name, mk := range parallelStrategies(t, q, r, lift) {
		for _, workers := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(len(name))*313 + int64(workers)))
				par, err := newParallel[P](q, r, workers, mk)
				if err != nil {
					t.Fatal(err)
				}
				defer par.Close()
				seq, err := mk()
				if err != nil {
					t.Fatal(err)
				}
				if workers > 1 && !par.Sharded() {
					t.Fatalf("expected sharding for workers=%d", workers)
				}

				// Preload some contents so Init's split/replicate path is
				// exercised too.
				for _, rd := range q.Rels {
					base := mkDelta(rng, rd.Schema)
					if err := par.Load(rd.Name, base); err != nil {
						t.Fatal(err)
					}
					if err := seq.Load(rd.Name, base); err != nil {
						t.Fatal(err)
					}
				}
				for _, m := range []Maintainer[P]{par, seq} {
					if err := m.Init(); err != nil {
						t.Fatal(err)
					}
				}
				if got, want := par.Result().String(), seq.Result().String(); got != want {
					t.Fatalf("after Init: parallel %s vs sequential %s", got, want)
				}

				rels := q.RelNames()
				for step := 0; step < 10; step++ {
					n := 1 + rng.Intn(5)
					batch := make([]NamedDelta[P], 0, n)
					for i := 0; i < n; i++ {
						rel := rels[rng.Intn(len(rels))]
						rd, _ := q.Rel(rel)
						batch = append(batch, NamedDelta[P]{Rel: rel, Delta: mkDelta(rng, rd.Schema)})
					}
					if err := par.ApplyDeltas(batch); err != nil {
						t.Fatal(err)
					}
					if err := seq.ApplyDeltas(batch); err != nil {
						t.Fatal(err)
					}
					got, want := par.Result().String(), seq.Result().String()
					if got != want {
						t.Fatalf("step %d: parallel %s vs sequential %s", step, got, want)
					}
				}
			})
		}
	}
}

// TestParallelMatchesSequentialInt checks the sharded parallel maintainer
// over the Z ring for all four strategies.
func TestParallelMatchesSequentialInt(t *testing.T) {
	q := paperQuery("A")
	runParallelEquivalence[int64](t, q, ring.Int{}, valueLift,
		func(rng *rand.Rand, schema data.Schema) *data.Relation[int64] {
			return randomDelta(rng, schema, 4, 1+rng.Intn(4))
		})
}

// TestParallelMatchesSequentialFloat repeats the check over the R ring with
// integral values, so float addition is exact and the reduction across
// shards must be bit-identical.
func TestParallelMatchesSequentialFloat(t *testing.T) {
	q := paperQuery("A")
	sumLiftD := func(v string, x data.Value) float64 {
		if v == "D" {
			return x.AsFloat()
		}
		return 1
	}
	runParallelEquivalence[float64](t, q, ring.Float{}, sumLiftD,
		func(rng *rand.Rand, schema data.Schema) *data.Relation[float64] {
			d := data.NewRelation[float64](ring.Float{}, schema)
			for i, n := 0, 1+rng.Intn(4); i < n; i++ {
				tup := make(data.Tuple, len(schema))
				for j := range tup {
					tup[j] = data.Int(int64(rng.Intn(4)))
				}
				d.Merge(tup, float64(rng.Intn(5)-2))
			}
			return d
		})
}

// TestParallelMatchesSequentialCofactor repeats the check over the cofactor
// ring — the workload the parallel engine targets — with a free group-by
// variable, so shard results stay keyed and the merged result must align
// key-wise and triple-wise.
func TestParallelMatchesSequentialCofactor(t *testing.T) {
	q := paperQuery("A")
	vars := q.Vars()
	idx := make(map[string]int, len(vars))
	for i, v := range vars {
		idx[v] = i
	}
	lift := func(v string, x data.Value) ring.Triple {
		return ring.LiftValue(idx[v], x.AsFloat())
	}
	cf := ring.Cofactor{}
	runParallelEquivalence[ring.Triple](t, q, cf, lift,
		func(rng *rand.Rand, schema data.Schema) *data.Relation[ring.Triple] {
			d := data.NewRelation[ring.Triple](cf, schema)
			for i, n := 0, 1+rng.Intn(4); i < n; i++ {
				tup := make(data.Tuple, len(schema))
				for j := range tup {
					tup[j] = data.Int(int64(rng.Intn(4)))
				}
				c := float64(rng.Intn(4) - 1)
				if c == 0 {
					c = 1
				}
				d.Merge(tup, ring.Triple{C: c})
			}
			return d
		})
}

// TestParallelAggregateRoot checks the empty-key root case: every variable
// aggregated away, so each shard produces a scalar payload and Result
// reduces them. The count of the join must match the sequential engine
// exactly.
func TestParallelAggregateRoot(t *testing.T) {
	q := paperQuery() // no free variables
	rng := rand.New(rand.NewSource(77))
	mk := func() (Maintainer[int64], error) {
		return New[int64](q, paperOrder(), ring.Int{}, countLift, Options[int64]{})
	}
	par, err := newParallel[int64](q, ring.Int{}, 4, mk)
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	seq, _ := mk()
	for _, m := range []Maintainer[int64]{par, seq} {
		if err := m.Init(); err != nil {
			t.Fatal(err)
		}
	}
	for step := 0; step < 8; step++ {
		rel := q.RelNames()[rng.Intn(3)]
		rd, _ := q.Rel(rel)
		delta := randomDelta(rng, rd.Schema, 3, 1+rng.Intn(5))
		if err := par.ApplyDelta(rel, delta); err != nil {
			t.Fatal(err)
		}
		if err := seq.ApplyDelta(rel, delta); err != nil {
			t.Fatal(err)
		}
		if got, want := par.Result().String(), seq.Result().String(); got != want {
			t.Fatalf("step %d: parallel %s vs sequential %s", step, got, want)
		}
	}
}

// TestParallelShardVar pins the shard-variable choice: the variable covered
// by the most relations.
func TestParallelShardVar(t *testing.T) {
	if v := pickShardVar(paperQuery()); v != "A" {
		t.Fatalf("paper query shard var = %q, want A (covers R and S)", v)
	}
}

// TestParallelSequentialFallback checks that workers=1 produces a direct
// delegate with no sharding machinery.
func TestParallelSequentialFallback(t *testing.T) {
	q := paperQuery("A")
	par, err := NewParallel[int64](q, ring.Int{}, 1, func() (Maintainer[int64], error) {
		return New[int64](q, paperOrder(), ring.Int{}, countLift, Options[int64]{})
	})
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	if par.Sharded() {
		t.Fatal("workers=1 should not shard")
	}
	if par.Workers() != 1 {
		t.Fatalf("Workers() = %d, want 1", par.Workers())
	}
	if err := par.Init(); err != nil {
		t.Fatal(err)
	}
	rd, _ := q.Rel("R")
	rng := rand.New(rand.NewSource(3))
	if err := par.ApplyDelta("R", randomDelta(rng, rd.Schema, 3, 4)); err != nil {
		t.Fatal(err)
	}
}
