package ivm

import (
	"math/rand"
	"testing"

	"fivm/internal/data"
	"fivm/internal/query"
	"fivm/internal/ring"
)

// batchStrategies enumerates the four maintainer strategies over a generic
// payload ring, for batched-vs-sequential differential testing.
func batchStrategies[P any](t *testing.T, q query.Query, r ring.Ring[P], lift data.LiftFunc[P]) map[string]func() Maintainer[P] {
	t.Helper()
	return map[string]func() Maintainer[P]{
		"F-IVM": func() Maintainer[P] {
			e, err := New[P](q, paperOrder(), r, lift, Options[P]{})
			if err != nil {
				t.Fatal(err)
			}
			return e
		},
		"1-IVM": func() Maintainer[P] {
			m, err := NewFirstOrder[P](q, paperOrder(), r, lift)
			if err != nil {
				t.Fatal(err)
			}
			return m
		},
		"DBT": func() Maintainer[P] {
			m, err := NewRecursive[P](q, r, lift, nil)
			if err != nil {
				t.Fatal(err)
			}
			return m
		},
		"RE-EVAL": func() Maintainer[P] {
			m, err := NewReEval[P](q, paperOrder(), r, lift)
			if err != nil {
				t.Fatal(err)
			}
			return m
		},
	}
}

// runBatchEquivalence drives a batched and a sequential instance of each
// strategy through identical random batches (with relations repeating inside
// a batch, so coalescing is exercised) and demands identical results after
// every batch.
func runBatchEquivalence[P any](t *testing.T, q query.Query, r ring.Ring[P], lift data.LiftFunc[P],
	mkDelta func(rng *rand.Rand, schema data.Schema) *data.Relation[P], eq func(a, b P) bool) {
	t.Helper()
	for name, mk := range batchStrategies(t, q, r, lift) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(name)) * 1007))
			batched, seq := mk(), mk()
			for _, m := range []Maintainer[P]{batched, seq} {
				if err := m.Init(); err != nil {
					t.Fatal(err)
				}
			}
			rels := q.RelNames()
			for step := 0; step < 12; step++ {
				n := 1 + rng.Intn(6)
				batch := make([]NamedDelta[P], 0, n)
				for i := 0; i < n; i++ {
					rel := rels[rng.Intn(len(rels))]
					rd, _ := q.Rel(rel)
					batch = append(batch, NamedDelta[P]{Rel: rel, Delta: mkDelta(rng, rd.Schema)})
				}
				if err := batched.ApplyDeltas(batch); err != nil {
					t.Fatal(err)
				}
				for _, nd := range batch {
					if err := seq.ApplyDelta(nd.Rel, nd.Delta); err != nil {
						t.Fatal(err)
					}
				}
				if !batched.Result().Equal(seq.Result(), eq) {
					t.Fatalf("step %d: batched %v vs sequential %v", step, batched.Result(), seq.Result())
				}
			}
		})
	}
}

// TestApplyDeltasMatchesSequentialInt checks, over the Z ring, that a batch
// applied via ApplyDeltas produces exactly the state of the same updates
// applied one at a time, for all four strategies.
func TestApplyDeltasMatchesSequentialInt(t *testing.T) {
	q := paperQuery("A")
	runBatchEquivalence[int64](t, q, ring.Int{}, valueLift,
		func(rng *rand.Rand, schema data.Schema) *data.Relation[int64] {
			return randomDelta(rng, schema, 4, 1+rng.Intn(4))
		},
		eqInt)
}

// TestApplyDeltasMatchesSequentialFloat repeats the check over the R ring
// with integer-valued payloads, so float addition is exact and results must
// be bit-identical.
func TestApplyDeltasMatchesSequentialFloat(t *testing.T) {
	q := paperQuery("A")
	sumLift := func(v string, x data.Value) float64 {
		if v == "D" {
			return x.AsFloat()
		}
		return 1
	}
	mkDelta := func(rng *rand.Rand, schema data.Schema) *data.Relation[float64] {
		d := data.NewRelation[float64](ring.Float{}, schema)
		for i, n := 0, 1+rng.Intn(4); i < n; i++ {
			tup := make(data.Tuple, len(schema))
			for j := range tup {
				tup[j] = data.Int(int64(rng.Intn(4)))
			}
			d.Merge(tup, float64(rng.Intn(5)-2))
		}
		return d
	}
	runBatchEquivalence[float64](t, q, ring.Float{}, sumLift, mkDelta,
		func(a, b float64) bool { return a == b })
}

// TestApplyDeltasEmptyAndNil checks degenerate batches: empty slices and
// empty deltas are no-ops for every strategy.
func TestApplyDeltasEmptyAndNil(t *testing.T) {
	q := paperQuery()
	for name, mk := range batchStrategies[int64](t, q, ring.Int{}, countLift) {
		t.Run(name, func(t *testing.T) {
			m := mk()
			if err := m.Init(); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			rd, _ := q.Rel("S")
			if err := m.ApplyDelta("S", randomDelta(rng, rd.Schema, 3, 5)); err != nil {
				t.Fatal(err)
			}
			before := m.Result().String()
			if err := m.ApplyDeltas(nil); err != nil {
				t.Fatal(err)
			}
			empty := data.NewRelation[int64](ring.Int{}, rd.Schema)
			if err := m.ApplyDeltas([]NamedDelta[int64]{{Rel: "S", Delta: empty}}); err != nil {
				t.Fatal(err)
			}
			// A nil delta is a no-op for every batch shape, including a
			// relation that appears only once (regression: this used to
			// reach the single-delta path and panic).
			if err := m.ApplyDeltas([]NamedDelta[int64]{{Rel: "S", Delta: nil}}); err != nil {
				t.Fatal(err)
			}
			if err := m.ApplyDeltas([]NamedDelta[int64]{{Rel: "S", Delta: nil}, {Rel: "R", Delta: nil}}); err != nil {
				t.Fatal(err)
			}
			if got := m.Result().String(); got != before {
				t.Fatalf("empty batch changed result: %s vs %s", got, before)
			}
		})
	}
}

// TestCoalesceBatchCopyOnWrite checks that coalescing never mutates the
// caller's deltas.
func TestCoalesceBatchCopyOnWrite(t *testing.T) {
	schema := data.NewSchema("A", "B")
	d1 := data.NewRelation[int64](ring.Int{}, schema)
	d1.Merge(data.Ints(1, 2), 3)
	d2 := data.NewRelation[int64](ring.Int{}, schema)
	d2.Merge(data.Ints(1, 2), 4)
	batch := []NamedDelta[int64]{{Rel: "R", Delta: d1}, {Rel: "R", Delta: d2}}
	out := coalesceBatch(batch)
	if len(out) != 1 {
		t.Fatalf("coalesced to %d groups, want 1", len(out))
	}
	if p, _ := out[0].Delta.Get(data.Ints(1, 2)); p != 7 {
		t.Errorf("merged payload = %d, want 7", p)
	}
	if p, _ := d1.Get(data.Ints(1, 2)); p != 3 {
		t.Errorf("caller delta mutated: %d", p)
	}
	// Distinct relations pass through untouched (no copy).
	batch2 := []NamedDelta[int64]{{Rel: "R", Delta: d1}, {Rel: "S", Delta: d2}}
	out2 := coalesceBatch(batch2)
	if len(out2) != 2 || out2[0].Delta != d1 || out2[1].Delta != d2 {
		t.Error("unique-relation batch should pass through unchanged")
	}
}
