package ivm

import (
	"math/rand"
	"testing"

	"fivm/internal/data"
	"fivm/internal/ring"
)

// benchEngine builds the paper-query engine preloaded with random contents,
// plus a fixed set of single-tuple deltas to replay.
func benchEngine(b *testing.B) (*Engine[int64], []*data.Relation[int64]) {
	b.Helper()
	q := paperQuery()
	rng := rand.New(rand.NewSource(99))
	e, err := New[int64](q, paperOrder(), ring.Int{}, countLift, Options[int64]{})
	if err != nil {
		b.Fatal(err)
	}
	for _, rd := range q.Rels {
		if err := e.Load(rd.Name, randomDelta(rng, rd.Schema, 16, 400)); err != nil {
			b.Fatal(err)
		}
	}
	if err := e.Init(); err != nil {
		b.Fatal(err)
	}
	rd, _ := q.Rel("S")
	deltas := make([]*data.Relation[int64], 64)
	for i := range deltas {
		deltas[i] = randomDelta(rng, rd.Schema, 16, 1)
	}
	return e, deltas
}

// BenchmarkApplyDelta measures single-tuple delta propagation through the
// F-IVM view tree: the paper's per-update hot path.
func BenchmarkApplyDelta(b *testing.B) {
	e, deltas := benchEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.ApplyDelta("S", deltas[i%len(deltas)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkApplyDeltas measures the batched path: 8 single-tuple updates to
// one relation coalesce into one leaf-to-root traversal. Reported per batch;
// divide by 8 for per-update cost.
func BenchmarkApplyDeltas(b *testing.B) {
	e, deltas := benchEngine(b)
	batch := make([]NamedDelta[int64], 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			batch[j] = NamedDelta[int64]{Rel: "S", Delta: deltas[(i*8+j)%len(deltas)]}
		}
		if err := e.ApplyDeltas(batch); err != nil {
			b.Fatal(err)
		}
	}
}
