package ivm

import (
	"fmt"

	"fivm/internal/data"
	"fivm/internal/query"
	"fivm/internal/ring"
	"fivm/internal/viewtree"
	"fivm/internal/vorder"
)

// AggSpec describes one scalar regression aggregate as a product of
// variable powers: SUM(∏ X^deg). The count aggregate has no degrees, a
// linear aggregate has one variable at degree 1, a quadratic one either two
// variables at degree 1 or one at degree 2.
type AggSpec struct {
	Degrees map[string]int
}

// Lift returns the scalar lifting function of the aggregate: x^deg(X).
func (s AggSpec) Lift(variable string, v data.Value) float64 {
	d := s.Degrees[variable]
	x := 1.0
	f := v.AsFloat()
	for i := 0; i < d; i++ {
		x *= f
	}
	return x
}

// CofactorAggSpecs enumerates the scalar aggregates of the cofactor
// computation over the given variables: SUM(1), SUM(X_i) for every i, and
// SUM(X_i*X_j) for every i <= j — the 1 + m + m(m+1)/2 aggregates that the
// scalar-payload competitors (paper's DBT and 1-IVM) each maintain with a
// separate query.
func CofactorAggSpecs(vars data.Schema) []AggSpec {
	specs := []AggSpec{{Degrees: map[string]int{}}}
	for _, v := range vars {
		specs = append(specs, AggSpec{Degrees: map[string]int{v: 1}})
	}
	for i, v := range vars {
		for j := i; j < len(vars); j++ {
			w := vars[j]
			d := map[string]int{v: 1}
			d[w]++
			specs = append(specs, AggSpec{Degrees: d})
		}
	}
	return specs
}

// MultiFirstOrder is first-order IVM with scalar payloads and no sharing
// across aggregates: one delta query per aggregate per update, over a
// single shared copy of the base relations. It models the paper's 1-IVM
// competitor for cofactor matrices (995 views for 990 aggregates on
// Retailer).
type MultiFirstOrder struct {
	q       query.Query
	root    *viewtree.Node
	specs   []AggSpec
	bases   map[string]*data.Relation[float64]
	results []*data.Relation[float64]
	pub     publisher[float64]
}

// NewMultiFirstOrder builds a per-aggregate first-order maintainer.
func NewMultiFirstOrder(q query.Query, o *vorder.Order, specs []AggSpec) (*MultiFirstOrder, error) {
	root, err := buildTree(q, o, true)
	if err != nil {
		return nil, err
	}
	return &MultiFirstOrder{
		q:     q,
		root:  root,
		specs: specs,
		bases: make(map[string]*data.Relation[float64]),
	}, nil
}

// Load installs the initial contents of a relation (payloads are tuple
// multiplicities).
func (m *MultiFirstOrder) Load(rel string, r *data.Relation[float64]) error {
	if _, ok := m.q.Rel(rel); !ok {
		return fmt.Errorf("ivm: unknown relation %q", rel)
	}
	m.bases[rel] = r.Clone()
	return nil
}

// Init computes every aggregate's initial result.
func (m *MultiFirstOrder) Init() error {
	m.results = make([]*data.Relation[float64], len(m.specs))
	for i, s := range m.specs {
		m.results[i] = evalTree(m.root, m.q, ring.Float{}, s.Lift, m.bases)
	}
	return nil
}

// ApplyDelta recomputes one delta query per aggregate and merges each into
// its result, then updates the shared base copy.
func (m *MultiFirstOrder) ApplyDelta(rel string, delta *data.Relation[float64]) error {
	if err := m.applyDelta(rel, delta); err != nil {
		return err
	}
	m.maybePublish()
	return nil
}

// applyDelta is ApplyDelta without the per-batch snapshot publication.
func (m *MultiFirstOrder) applyDelta(rel string, delta *data.Relation[float64]) error {
	rd, ok := m.q.Rel(rel)
	if !ok {
		return fmt.Errorf("ivm: unknown relation %q", rel)
	}
	for i, s := range m.specs {
		dq := evalTreeSubst(m.root, m.q, ring.Float{}, s.Lift, m.bases, rel, delta)
		m.results[i].MergeAll(dq)
	}
	base := m.bases[rel]
	if base == nil {
		base = data.NewRelation(ring.Float{}, rd.Schema)
		m.bases[rel] = base
	}
	if base.Schema().Equal(delta.Schema()) {
		base.MergeAll(delta)
	} else {
		base.MergeAll(data.Project(delta, base.Schema()))
	}
	return nil
}

// Result returns the first aggregate's result (the count); use Results for
// all of them.
func (m *MultiFirstOrder) Result() *data.Relation[float64] {
	if len(m.results) == 0 {
		return data.NewRelation(ring.Float{}, m.root.Keys)
	}
	return m.results[0]
}

// Results returns every aggregate's result, indexed like the specs.
func (m *MultiFirstOrder) Results() []*data.Relation[float64] { return m.results }

// ViewCount reports base relations plus one result view per aggregate.
func (m *MultiFirstOrder) ViewCount() int { return len(m.bases) + len(m.specs) }

// MemoryBytes estimates the footprint of bases and results.
func (m *MultiFirstOrder) MemoryBytes() int {
	total := 0
	for _, b := range m.bases {
		total += relationBytes(b)
	}
	for _, r := range m.results {
		total += relationBytes(r)
	}
	return total
}

// MultiRecursive is fully recursive IVM with scalar payloads and no sharing
// across aggregates: one independent DBToaster-style view hierarchy per
// aggregate. It models the paper's DBT competitor for cofactor matrices
// (3814 views for 990 aggregates on Retailer). Real DBToaster shares some
// identical auxiliary views across aggregates; this simulation does not, so
// its view count is an upper bound with the same growth behaviour.
type MultiRecursive struct {
	q         query.Query
	instances []*Recursive[float64]
	pub       publisher[float64]
}

// NewMultiRecursive builds one recursive hierarchy per aggregate.
func NewMultiRecursive(q query.Query, specs []AggSpec, updatable []string) (*MultiRecursive, error) {
	m := &MultiRecursive{q: q}
	for _, s := range specs {
		inst, err := NewRecursive[float64](q, ring.Float{}, s.Lift, updatable)
		if err != nil {
			return nil, err
		}
		m.instances = append(m.instances, inst)
	}
	return m, nil
}

// Load installs the initial contents of a relation in every instance.
func (m *MultiRecursive) Load(rel string, r *data.Relation[float64]) error {
	for _, inst := range m.instances {
		if err := inst.Load(rel, r); err != nil {
			return err
		}
	}
	return nil
}

// Init initializes every instance.
func (m *MultiRecursive) Init() error {
	for _, inst := range m.instances {
		if err := inst.Init(); err != nil {
			return err
		}
	}
	return nil
}

// ApplyDelta maintains every per-aggregate hierarchy.
func (m *MultiRecursive) ApplyDelta(rel string, delta *data.Relation[float64]) error {
	for _, inst := range m.instances {
		if err := inst.ApplyDelta(rel, delta); err != nil {
			return err
		}
	}
	m.maybePublish()
	return nil
}

// Result returns the first aggregate's result; use Results for all.
func (m *MultiRecursive) Result() *data.Relation[float64] { return m.instances[0].Result() }

// Results returns every aggregate's result.
func (m *MultiRecursive) Results() []*data.Relation[float64] {
	out := make([]*data.Relation[float64], len(m.instances))
	for i, inst := range m.instances {
		out[i] = inst.Result()
	}
	return out
}

// ViewCount sums the views of all hierarchies.
func (m *MultiRecursive) ViewCount() int {
	n := 0
	for _, inst := range m.instances {
		n += inst.ViewCount()
	}
	return n
}

// MemoryBytes sums the footprints of all hierarchies.
func (m *MultiRecursive) MemoryBytes() int {
	n := 0
	for _, inst := range m.instances {
		n += inst.MemoryBytes()
	}
	return n
}
