package ivm

import (
	"fmt"
	"math/rand"
	"testing"

	"fivm/internal/data"
	"fivm/internal/query"
	"fivm/internal/ring"
	"fivm/internal/vorder"
)

// randomQuery generates a random connected join query: nRels relations over
// a pool of variables, each relation 1-3 variables, connected by
// construction (each relation shares a variable with an earlier one), with
// a random subset of free variables.
func randomQuery(rng *rand.Rand, nRels int) query.Query {
	pool := []string{"A", "B", "C", "D", "E", "F"}
	var rels []query.RelDef
	used := []string{pool[rng.Intn(len(pool))]}
	inUsed := map[string]bool{used[0]: true}
	for i := 0; i < nRels; i++ {
		vars := data.Schema{}
		// Anchor on an already-used variable to stay connected.
		anchor := used[rng.Intn(len(used))]
		vars = append(vars, anchor)
		for len(vars) < 1+rng.Intn(3) {
			v := pool[rng.Intn(len(pool))]
			if !vars.Contains(v) {
				vars = append(vars, v)
				if !inUsed[v] {
					inUsed[v] = true
					used = append(used, v)
				}
			}
		}
		rels = append(rels, query.RelDef{Name: fmt.Sprintf("R%d", i), Schema: vars})
	}
	q := query.Query{Name: "fuzz", Rels: rels}
	// Random free set.
	for _, v := range used {
		if rng.Intn(3) == 0 {
			q.Free = append(q.Free, v)
		}
	}
	return q
}

// TestFuzzRandomQueries builds random queries, derives variable orders
// heuristically, and checks F-IVM, 1-IVM, and DBT against re-evaluation
// over random update streams. This exercises arbitrary (including cyclic)
// join shapes, chain composition, free-variable placement, and the
// materialization rule together.
func TestFuzzRandomQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	trials := 25
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		q := randomQuery(rng, 2+rng.Intn(3))
		bases := map[string]*data.Relation[int64]{}
		mkOrder := func() *vorder.Order {
			o, err := vorder.Build(q)
			if err != nil {
				t.Fatalf("trial %d: Build: %v\nquery: %+v", trial, err, q)
			}
			return o
		}

		engines := map[string]Maintainer[int64]{}
		var err error
		if engines["fivm"], err = New[int64](q, mkOrder(), ring.Int{}, countLift, Options[int64]{}); err != nil {
			t.Fatalf("trial %d: fivm: %v\nquery: %+v", trial, err, q)
		}
		if engines["fivm-composed"], err = New[int64](q, mkOrder(), ring.Int{}, countLift, Options[int64]{ComposeChains: true}); err != nil {
			t.Fatalf("trial %d: composed: %v", trial, err)
		}
		if engines["1ivm"], err = NewFirstOrder[int64](q, mkOrder(), ring.Int{}, countLift); err != nil {
			t.Fatalf("trial %d: 1ivm: %v", trial, err)
		}
		if engines["dbt"], err = NewRecursive[int64](q, ring.Int{}, countLift, nil); err != nil {
			t.Fatalf("trial %d: dbt: %v", trial, err)
		}
		ref, err := NewReEval[int64](q, mkOrder(), ring.Int{}, countLift)
		if err != nil {
			t.Fatalf("trial %d: reeval: %v", trial, err)
		}

		for _, rd := range q.Rels {
			base := randomDelta(rng, rd.Schema, 3, rng.Intn(6))
			bases[rd.Name] = base
			for _, m := range engines {
				if err := m.Load(rd.Name, base.Clone()); err != nil {
					t.Fatal(err)
				}
			}
			ref.Load(rd.Name, base.Clone())
		}
		for name, m := range engines {
			if err := m.Init(); err != nil {
				t.Fatalf("trial %d: %s init: %v", trial, name, err)
			}
		}
		if err := ref.Init(); err != nil {
			t.Fatal(err)
		}

		for step := 0; step < 15; step++ {
			rel := q.Rels[rng.Intn(len(q.Rels))]
			delta := randomDelta(rng, rel.Schema, 3, 1+rng.Intn(3))
			bases[rel.Name].MergeAll(delta)
			for name, m := range engines {
				if err := m.ApplyDelta(rel.Name, delta.Clone()); err != nil {
					t.Fatalf("trial %d step %d: %s: %v", trial, step, name, err)
				}
			}
			if err := ref.ApplyDelta(rel.Name, delta.Clone()); err != nil {
				t.Fatal(err)
			}
			want := ref.Result()
			for name, m := range engines {
				if !m.Result().Equal(want, eqInt) {
					t.Fatalf("trial %d step %d: %s diverged on %s\nquery: %+v\norder: %v\n got %v\nwant %v",
						trial, step, name, rel.Name, q, mkOrder(), m.Result(), want)
				}
			}
		}
		// Every materialized view must equal its from-scratch evaluation.
		if err := engines["fivm"].(*Engine[int64]).CheckConsistency(bases, eqInt); err != nil {
			t.Fatalf("trial %d: %v\nquery: %+v", trial, err, q)
		}
	}
}

// TestFuzzIndicators runs random cyclic-ish queries through the engine with
// indicator projections enabled, against re-evaluation.
func TestFuzzIndicators(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 12; trial++ {
		q := randomQuery(rng, 3+rng.Intn(2))
		mkOrder := func() *vorder.Order {
			o, err := vorder.Build(q)
			if err != nil {
				t.Fatal(err)
			}
			return o
		}
		e, err := New[int64](q, mkOrder(), ring.Int{}, countLift, Options[int64]{Indicators: true})
		if err != nil {
			t.Fatalf("trial %d: %v\nquery: %+v", trial, err, q)
		}
		ref, err := NewReEval[int64](q, mkOrder(), ring.Int{}, countLift)
		if err != nil {
			t.Fatal(err)
		}
		for _, rd := range q.Rels {
			base := randomDelta(rng, rd.Schema, 3, rng.Intn(6))
			e.Load(rd.Name, base.Clone())
			ref.Load(rd.Name, base.Clone())
		}
		if err := e.Init(); err != nil {
			t.Fatalf("trial %d: init: %v\nquery: %+v", trial, err, q)
		}
		if err := ref.Init(); err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 15; step++ {
			rel := q.Rels[rng.Intn(len(q.Rels))]
			delta := randomDelta(rng, rel.Schema, 3, 1+rng.Intn(3))
			if err := e.ApplyDelta(rel.Name, delta.Clone()); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			if err := ref.ApplyDelta(rel.Name, delta.Clone()); err != nil {
				t.Fatal(err)
			}
			if !e.Result().Equal(ref.Result(), eqInt) {
				t.Fatalf("trial %d step %d: indicators diverged on %s\nquery: %+v", trial, step, rel.Name, q)
			}
		}
	}
}
