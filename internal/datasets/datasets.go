// Package datasets synthesizes the paper's three evaluation workloads
// (Section 7 and Appendix C.1) at configurable scale:
//
//   - Retailer: a snowflake schema with a large Inventory fact relation
//     joining dimension hierarchies Item, Weather, Location, and Census —
//     43 attributes in total, matching the paper's schema shape. The
//     original is proprietary; this generator reproduces the join-key
//     sharing pattern and relative cardinalities, which are what drive the
//     reported effects (view counts, O(1) vs O(n) update costs).
//   - Housing: the synthetic star schema of six relations joining on a
//     common postcode, 27 attributes, with the paper's scale knob.
//   - Twitter: a heavy-tailed random digraph standing in for the Higgs
//     Twitter dataset, split into three equal edge relations R(A,B),
//     S(B,C), T(C,A) for the triangle query.
//
// It also synthesizes the update streams: insertions interleaved across
// relations in round-robin fashion and grouped into fixed-size batches.
package datasets

import (
	"math/rand"

	"fivm/internal/data"
	"fivm/internal/query"
	"fivm/internal/vorder"
)

// Dataset bundles a query, a variable order, and generated contents.
type Dataset struct {
	Name  string
	Query query.Query
	// NewOrder returns a fresh copy of the dataset's canonical variable
	// order (orders hold per-query state, so each engine needs its own).
	NewOrder func() *vorder.Order
	// Tuples holds the generated contents per relation.
	Tuples map[string][]data.Tuple
	// Largest names the largest relation (the ONE-scenario update target).
	Largest string
}

// TotalTuples returns the total number of generated tuples.
func (d *Dataset) TotalTuples() int {
	n := 0
	for _, ts := range d.Tuples {
		n += len(ts)
	}
	return n
}

// Batch is one update batch: tuples to insert into (or delete from) one
// relation.
type Batch struct {
	Rel    string
	Tuples []data.Tuple
}

// RoundRobinStream interleaves the dataset's tuples into a stream of
// batches of the given size, cycling through the relations in name order as
// the paper's stream synthesis does. Relations exhaust at different times;
// the stream continues with the remaining ones.
func RoundRobinStream(d *Dataset, relNames []string, batchSize int) []Batch {
	offsets := make(map[string]int, len(relNames))
	var out []Batch
	for {
		progressed := false
		for _, rel := range relNames {
			ts := d.Tuples[rel]
			off := offsets[rel]
			if off >= len(ts) {
				continue
			}
			end := off + batchSize
			if end > len(ts) {
				end = len(ts)
			}
			out = append(out, Batch{Rel: rel, Tuples: ts[off:end]})
			offsets[rel] = end
			progressed = true
		}
		if !progressed {
			return out
		}
	}
}

// SingleRelationStream batches only one relation's tuples (the ONE
// scenario: a stream over the largest relation with all others static).
func SingleRelationStream(d *Dataset, rel string, batchSize int) []Batch {
	ts := d.Tuples[rel]
	var out []Batch
	for off := 0; off < len(ts); off += batchSize {
		end := off + batchSize
		if end > len(ts) {
			end = len(ts)
		}
		out = append(out, Batch{Rel: rel, Tuples: ts[off:end]})
	}
	return out
}

// WindowedStream turns one relation's tuples into a sliding-window stream:
// each batch inserts fresh tuples and, once the window is full, deletes the
// oldest ones. Delete is signalled on the returned batches. It exercises
// the deletion path on realistic data (the ring-payload encoding of deletes
// as negative payloads is the paper's Section 2 design point).
func WindowedStream(d *Dataset, rel string, window, batchSize int) []WindowedBatch {
	ts := d.Tuples[rel]
	var out []WindowedBatch
	for off := 0; off < len(ts); off += batchSize {
		end := off + batchSize
		if end > len(ts) {
			end = len(ts)
		}
		out = append(out, WindowedBatch{Batch: Batch{Rel: rel, Tuples: ts[off:end]}})
		if expireEnd := end - window; expireEnd > 0 {
			expireStart := off - window
			if expireStart < 0 {
				expireStart = 0
			}
			out = append(out, WindowedBatch{
				Batch:  Batch{Rel: rel, Tuples: ts[expireStart:expireEnd]},
				Delete: true,
			})
		}
	}
	return out
}

// WindowedBatch is a stream batch that either inserts or deletes.
type WindowedBatch struct {
	Batch
	Delete bool
}

// ri returns a random integer value in [0, n).
func ri(rng *rand.Rand, n int) data.Value { return data.Int(int64(rng.Intn(n))) }
