package datasets

import (
	"math/rand"

	"fivm/internal/data"
	"fivm/internal/query"
	"fivm/internal/vorder"
)

// Housing schema: six relations joining on postcode, 27 attributes total,
// mirroring the paper's synthetic house price market dataset.
var (
	houseSchema = data.NewSchema("postcode", "livingarea", "price", "nbbedrooms", "nbbathrooms",
		"kitchensize", "house", "flat", "unknown", "garden", "parking")
	shopSchema         = data.NewSchema("postcode", "openinghoursshop", "pricerangeshop", "sainsburys", "tesco", "ms")
	institutionSchema  = data.NewSchema("postcode", "typeeducation", "sizeinstitution")
	restaurantSchema   = data.NewSchema("postcode", "openinghoursrest", "pricerangerest")
	demographicsSchema = data.NewSchema("postcode", "averagesalary", "crimesperyear", "unemployment",
		"nbhospitals")
	transportSchema = data.NewSchema("postcode", "nbbuslines", "nbtrainstations", "distancecitycentre")
)

// HousingConfig scales the synthetic Housing dataset.
type HousingConfig struct {
	// Postcodes is the number of distinct join keys; the paper uses 25,000
	// and keeps it fixed across scales.
	Postcodes int
	// Scale multiplies the per-postcode tuple counts of House, Shop, and
	// Restaurant (the paper's scale factor 1..20); the listing join result
	// then grows cubically with Scale while the factorized one grows
	// linearly.
	Scale int
	Seed  int64
}

// DefaultHousing is a laptop-scale configuration.
func DefaultHousing() HousingConfig {
	return HousingConfig{Postcodes: 500, Scale: 2, Seed: 2}
}

// HousingQuery returns the star natural join of the six relations.
func HousingQuery(free ...string) query.Query {
	return query.MustNew("housing", data.Schema(free),
		query.RelDef{Name: "House", Schema: houseSchema},
		query.RelDef{Name: "Shop", Schema: shopSchema},
		query.RelDef{Name: "Institution", Schema: institutionSchema},
		query.RelDef{Name: "Restaurant", Schema: restaurantSchema},
		query.RelDef{Name: "Demographics", Schema: demographicsSchema},
		query.RelDef{Name: "Transport", Schema: transportSchema},
	)
}

// HousingOrder is the paper's optimal order: postcode at the root, each
// relation's local attributes forming a root-to-leaf chain below it.
func HousingOrder() *vorder.Order {
	chainOf := func(vars data.Schema) *vorder.Node {
		var top, cur *vorder.Node
		for _, v := range vars {
			n := vorder.V(v)
			if cur == nil {
				top = n
			} else {
				cur.Children = append(cur.Children, n)
			}
			cur = n
		}
		return top
	}
	pc := data.NewSchema("postcode")
	root := vorder.V("postcode",
		chainOf(houseSchema.Minus(pc)),
		chainOf(shopSchema.Minus(pc)),
		chainOf(institutionSchema.Minus(pc)),
		chainOf(restaurantSchema.Minus(pc)),
		chainOf(demographicsSchema.Minus(pc)),
		chainOf(transportSchema.Minus(pc)),
	)
	return vorder.MustNew(root)
}

// GenHousing synthesizes the dataset.
func GenHousing(cfg HousingConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Dataset{
		Name:     "housing",
		Query:    HousingQuery(),
		NewOrder: HousingOrder,
		Tuples:   make(map[string][]data.Tuple),
		Largest:  "House",
	}
	gen := func(rel string, schema data.Schema, perPostcode int) {
		for pc := 0; pc < cfg.Postcodes; pc++ {
			for i := 0; i < perPostcode; i++ {
				t := make(data.Tuple, len(schema))
				t[0] = data.Int(int64(pc))
				for j := 1; j < len(t); j++ {
					t[j] = ri(rng, 100)
				}
				d.Tuples[rel] = append(d.Tuples[rel], t)
			}
		}
	}
	// Three relations grow with the scale factor (driving the cubic listing
	// growth); the other three stay at one tuple per postcode.
	gen("House", houseSchema, cfg.Scale)
	gen("Shop", shopSchema, cfg.Scale)
	gen("Restaurant", restaurantSchema, cfg.Scale)
	gen("Institution", institutionSchema, 1)
	gen("Demographics", demographicsSchema, 1)
	gen("Transport", transportSchema, 1)
	return d
}
