package datasets

import (
	"math/rand"

	"fivm/internal/data"
	"fivm/internal/query"
	"fivm/internal/vorder"
)

// Retailer schema attribute lists (43 attributes in total, joined on locn,
// dateid, ksn, and zip as in the paper's snowflake).
var (
	retInventory = data.NewSchema("locn", "dateid", "ksn", "inventoryunits")
	retItem      = data.NewSchema("ksn", "subcategory", "category", "categoryCluster", "prize")
	retWeather   = data.NewSchema("locn", "dateid", "rain", "snow", "maxtemp", "mintemp", "meanwind", "thunder")
	retLocation  = data.NewSchema("locn", "zip", "rgn_cd", "clim_zn_nbr", "tot_area_sq_ft",
		"sell_area_sq_ft", "avghhi", "supertargetdistance", "supertargetdrivetime",
		"targetdistance", "targetdrivetime", "walmartdistance", "walmartdrivetime",
		"walmartsupercenterdistance", "walmartsupercenterdrivetime")
	retCensus = data.NewSchema("zip", "population", "white", "asian", "pacific", "blackafrican",
		"medianage", "occupiedhouseunits", "houseunits", "families", "households", "husbwife",
		"males", "females", "householdschildren", "hispanic")
)

// RetailerConfig scales the synthetic Retailer dataset.
type RetailerConfig struct {
	Locations int // number of stores
	Dates     int // number of dates
	Items     int // number of products (ksn)
	// ItemsPerLocDate is the expected number of inventory records per
	// (location, date) pair; Inventory dominates the dataset as in the
	// original (84M records vs thousands in the dimensions).
	ItemsPerLocDate int
	Seed            int64
}

// DefaultRetailer is a laptop-scale configuration preserving the original's
// shape: Inventory carries well over 90% of the tuples.
func DefaultRetailer() RetailerConfig {
	return RetailerConfig{Locations: 20, Dates: 60, Items: 100, ItemsPerLocDate: 25, Seed: 1}
}

// RetailerQuery returns the natural join query of the five relations with
// the given free variables.
func RetailerQuery(free ...string) query.Query {
	return query.MustNew("retailer", data.Schema(free),
		query.RelDef{Name: "Inventory", Schema: retInventory},
		query.RelDef{Name: "Item", Schema: retItem},
		query.RelDef{Name: "Weather", Schema: retWeather},
		query.RelDef{Name: "Location", Schema: retLocation},
		query.RelDef{Name: "Census", Schema: retCensus},
	)
}

// RetailerOrder builds the paper's variable order: the partial order on
// join variables is locn − {dateid − {ksn}, zip}, with each relation's
// local attributes forming a chain below its deepest join variable (so
// chain composition yields the paper's 9 views: five per-relation views,
// three intermediate, one root).
func RetailerOrder() *vorder.Order {
	chainOf := func(vars data.Schema, below *vorder.Node) *vorder.Node {
		// Build a downward chain of the vars, returning the top node.
		var top, cur *vorder.Node
		for _, v := range vars {
			n := vorder.V(v)
			if cur == nil {
				top = n
			} else {
				cur.Children = append(cur.Children, n)
			}
			cur = n
		}
		if below != nil {
			cur.Children = append(cur.Children, below)
		}
		return top
	}

	ksn := vorder.V("ksn",
		chainOf(data.NewSchema("inventoryunits"), nil),
		chainOf(retItem.Minus(data.NewSchema("ksn")), nil),
	)
	dateid := vorder.V("dateid",
		ksn,
		chainOf(retWeather.Minus(data.NewSchema("locn", "dateid")), nil),
	)
	zip := vorder.V("zip",
		chainOf(retLocation.Minus(data.NewSchema("locn", "zip")), nil),
		chainOf(retCensus.Minus(data.NewSchema("zip")), nil),
	)
	root := vorder.V("locn", dateid, zip)
	return vorder.MustNew(root)
}

// GenRetailer synthesizes the dataset.
func GenRetailer(cfg RetailerConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Dataset{
		Name:     "retailer",
		Query:    RetailerQuery(),
		NewOrder: RetailerOrder,
		Tuples:   make(map[string][]data.Tuple),
		Largest:  "Inventory",
	}

	// Dimension hierarchies. One zip per few locations, as in a real
	// store/zip mapping.
	zips := cfg.Locations/2 + 1
	for l := 0; l < cfg.Locations; l++ {
		t := data.Tuple{
			data.Int(int64(l)), data.Int(int64(l % zips)),
			ri(rng, 10), ri(rng, 8), ri(rng, 100000), ri(rng, 50000), ri(rng, 90000),
			ri(rng, 40), ri(rng, 60), ri(rng, 40), ri(rng, 60), ri(rng, 40), ri(rng, 60),
			ri(rng, 40), ri(rng, 60),
		}
		d.Tuples["Location"] = append(d.Tuples["Location"], t)
	}
	for z := 0; z < zips; z++ {
		t := make(data.Tuple, len(retCensus))
		t[0] = data.Int(int64(z))
		for i := 1; i < len(t); i++ {
			t[i] = ri(rng, 10000)
		}
		d.Tuples["Census"] = append(d.Tuples["Census"], t)
	}
	for k := 0; k < cfg.Items; k++ {
		t := data.Tuple{
			data.Int(int64(k)), ri(rng, 20), ri(rng, 8), ri(rng, 4), ri(rng, 500),
		}
		d.Tuples["Item"] = append(d.Tuples["Item"], t)
	}
	for l := 0; l < cfg.Locations; l++ {
		for dt := 0; dt < cfg.Dates; dt++ {
			t := data.Tuple{
				data.Int(int64(l)), data.Int(int64(dt)),
				ri(rng, 2), ri(rng, 2), ri(rng, 40), ri(rng, 20), ri(rng, 30), ri(rng, 2),
			}
			d.Tuples["Weather"] = append(d.Tuples["Weather"], t)
		}
	}
	// Inventory: the fact relation, by far the largest.
	for l := 0; l < cfg.Locations; l++ {
		for dt := 0; dt < cfg.Dates; dt++ {
			for i := 0; i < cfg.ItemsPerLocDate; i++ {
				t := data.Tuple{
					data.Int(int64(l)), data.Int(int64(dt)), ri(rng, cfg.Items), ri(rng, 200),
				}
				d.Tuples["Inventory"] = append(d.Tuples["Inventory"], t)
			}
		}
	}
	return d
}
