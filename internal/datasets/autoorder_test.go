package datasets

import (
	"testing"

	"fivm/internal/data"
	"fivm/internal/vorder"
)

// statsOf seeds a collector from a generated dataset (the ANALYZE path the
// benchmarks use before self-planning).
func statsOf(d *Dataset) *data.Stats {
	st := data.NewStats()
	for rel, ts := range d.Tuples {
		rd, _ := d.Query.Rel(rel)
		rs := st.Rel(rel, rd.Schema)
		for _, t := range ts {
			rs.ObserveInsert(t)
		}
	}
	return st
}

// TestChosenOrderNoWorseThanHandpicked pins the optimizer acceptance bar on
// every benchmark query: the cost-based order must rank no worse than the
// paper's handpicked order under the model seeded with the dataset's own
// statistics, and must stay within the handpicked width.
func TestChosenOrderNoWorseThanHandpicked(t *testing.T) {
	for _, d := range []*Dataset{
		GenRetailer(RetailerConfig{Locations: 8, Dates: 16, Items: 40, ItemsPerLocDate: 8, Seed: 1}),
		GenHousing(HousingConfig{Postcodes: 80, Scale: 2, Seed: 2}),
		GenTwitter(TwitterConfig{Users: 80, Edges: 900, Seed: 3}),
	} {
		st := statsOf(d)
		m := vorder.NewCostModel(d.Query, st, nil)
		chosen, err := vorder.Choose(d.Query, vorder.ChooseOptions{Model: m})
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		hand := d.NewOrder()
		if err := hand.Prepare(d.Query); err != nil {
			t.Fatal(err)
		}
		cc, hc := m.Cost(chosen).Total(), m.Cost(hand).Total()
		if cc > hc*1.0001 {
			t.Errorf("%s: chosen cost %v worse than handpicked %v\n chosen %s\n hand   %s",
				d.Name, cc, hc, chosen.String(), hand.String())
		}
		if cw, hw := chosen.Width(d.Query), hand.Width(d.Query); cw > hw {
			t.Errorf("%s: chosen width %d > handpicked %d", d.Name, cw, hw)
		}
		t.Logf("%s:\n  handpicked cost %s\n    %s\n  chosen     cost %s\n    %s",
			d.Name, m.Cost(hand), hand.String(), m.Cost(chosen), chosen.String())
	}
}
