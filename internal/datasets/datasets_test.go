package datasets

import (
	"testing"

	"fivm/internal/data"
	"fivm/internal/viewtree"
)

func TestRetailerSchemaHas43Attributes(t *testing.T) {
	q := RetailerQuery()
	if got := len(q.Vars()); got != 43 {
		t.Errorf("retailer variables = %d, want 43 (paper)", got)
	}
	if len(q.Rels) != 5 {
		t.Errorf("retailer relations = %d, want 5", len(q.Rels))
	}
}

func TestHousingSchemaHas27Attributes(t *testing.T) {
	q := HousingQuery()
	if got := len(q.Vars()); got != 27 {
		t.Errorf("housing variables = %d, want 27 (paper)", got)
	}
	if len(q.Rels) != 6 {
		t.Errorf("housing relations = %d, want 6", len(q.Rels))
	}
	// Star schema: every relation contains postcode.
	for _, r := range q.Rels {
		if !r.Schema.Contains("postcode") {
			t.Errorf("%s lacks postcode", r.Name)
		}
	}
}

func TestRetailerOrderValid(t *testing.T) {
	q := RetailerQuery()
	o := RetailerOrder()
	if err := o.Prepare(q); err != nil {
		t.Fatalf("retailer order invalid: %v", err)
	}
}

func TestRetailerOrderYieldsNineViews(t *testing.T) {
	// The paper's F-IVM stores 9 views on Retailer: five per-relation
	// views, three intermediates, and the root.
	q := RetailerQuery()
	o := RetailerOrder()
	if err := o.Prepare(q); err != nil {
		t.Fatal(err)
	}
	root, err := viewtree.Build(o, q)
	if err != nil {
		t.Fatal(err)
	}
	root = viewtree.CollapseIdentical(root)
	root = viewtree.ComposeChains(root)
	inner := 0
	root.Walk(func(n *viewtree.Node) {
		if !n.IsLeaf() {
			inner++
		}
	})
	if inner != 9 {
		t.Errorf("composed retailer view tree has %d views, want 9 (paper)", inner)
	}
}

func TestHousingOrderYieldsSevenViews(t *testing.T) {
	// The paper's F-IVM stores 7 views on Housing: one per relation plus
	// the root.
	q := HousingQuery()
	o := HousingOrder()
	if err := o.Prepare(q); err != nil {
		t.Fatal(err)
	}
	root, err := viewtree.Build(o, q)
	if err != nil {
		t.Fatal(err)
	}
	root = viewtree.CollapseIdentical(root)
	root = viewtree.ComposeChains(root)
	inner := 0
	root.Walk(func(n *viewtree.Node) {
		if !n.IsLeaf() {
			inner++
		}
	})
	if inner != 7 {
		t.Errorf("composed housing view tree has %d views, want 7 (paper)", inner)
	}
}

func TestGenRetailerShape(t *testing.T) {
	cfg := RetailerConfig{Locations: 5, Dates: 10, Items: 20, ItemsPerLocDate: 4, Seed: 1}
	ds := GenRetailer(cfg)
	if got := len(ds.Tuples["Inventory"]); got != 5*10*4 {
		t.Errorf("inventory tuples = %d", got)
	}
	if got := len(ds.Tuples["Location"]); got != 5 {
		t.Errorf("location tuples = %d", got)
	}
	// Inventory dominates.
	if len(ds.Tuples["Inventory"])*2 < ds.TotalTuples() {
		t.Error("Inventory should dominate the dataset")
	}
	// Arity checks.
	for _, rd := range ds.Query.Rels {
		for _, tup := range ds.Tuples[rd.Name][:1] {
			if len(tup) != len(rd.Schema) {
				t.Errorf("%s arity %d, want %d", rd.Name, len(tup), len(rd.Schema))
			}
		}
	}
}

func TestGenRetailerDeterministic(t *testing.T) {
	a := GenRetailer(RetailerConfig{Locations: 3, Dates: 4, Items: 5, ItemsPerLocDate: 2, Seed: 9})
	b := GenRetailer(RetailerConfig{Locations: 3, Dates: 4, Items: 5, ItemsPerLocDate: 2, Seed: 9})
	for rel := range a.Tuples {
		if len(a.Tuples[rel]) != len(b.Tuples[rel]) {
			t.Fatalf("%s: nondeterministic size", rel)
		}
		for i := range a.Tuples[rel] {
			if !a.Tuples[rel][i].Equal(b.Tuples[rel][i]) {
				t.Fatalf("%s[%d]: nondeterministic tuple", rel, i)
			}
		}
	}
}

func TestGenHousingScale(t *testing.T) {
	base := GenHousing(HousingConfig{Postcodes: 10, Scale: 1, Seed: 2})
	big := GenHousing(HousingConfig{Postcodes: 10, Scale: 3, Seed: 2})
	if len(big.Tuples["House"]) != 3*len(base.Tuples["House"]) {
		t.Error("House should scale linearly")
	}
	if len(big.Tuples["Transport"]) != len(base.Tuples["Transport"]) {
		t.Error("Transport should not scale")
	}
}

func TestGenTwitterSplit(t *testing.T) {
	ds := GenTwitter(TwitterConfig{Users: 50, Edges: 300, Seed: 3})
	total := len(ds.Tuples["R"]) + len(ds.Tuples["S"]) + len(ds.Tuples["T"])
	if total != 300 {
		t.Errorf("total edges = %d, want 300", total)
	}
	// Thirds within rounding.
	if r := len(ds.Tuples["R"]); r < 99 || r > 101 {
		t.Errorf("R third = %d", r)
	}
	// No self-loops.
	for _, rel := range []string{"R", "S", "T"} {
		for _, e := range ds.Tuples[rel] {
			if e[0] == e[1] {
				t.Fatalf("self-loop in %s: %v", rel, e)
			}
		}
	}
}

func TestRoundRobinStreamCoversEverything(t *testing.T) {
	ds := GenHousing(HousingConfig{Postcodes: 7, Scale: 2, Seed: 4})
	stream := RoundRobinStream(ds, ds.Query.RelNames(), 5)
	counts := map[string]int{}
	for _, b := range stream {
		if len(b.Tuples) == 0 || len(b.Tuples) > 5 {
			t.Fatalf("batch size %d", len(b.Tuples))
		}
		counts[b.Rel] += len(b.Tuples)
	}
	for rel, tuples := range ds.Tuples {
		if counts[rel] != len(tuples) {
			t.Errorf("%s: streamed %d of %d tuples", rel, counts[rel], len(tuples))
		}
	}
	// Round-robin: the first batches cycle through the relations.
	seen := map[string]bool{}
	for i := 0; i < len(ds.Tuples) && i < len(stream); i++ {
		if seen[stream[i].Rel] {
			t.Errorf("relation %s repeated before the cycle completed", stream[i].Rel)
		}
		seen[stream[i].Rel] = true
	}
}

func TestSingleRelationStream(t *testing.T) {
	ds := GenHousing(HousingConfig{Postcodes: 7, Scale: 1, Seed: 4})
	stream := SingleRelationStream(ds, "House", 3)
	total := 0
	for _, b := range stream {
		if b.Rel != "House" {
			t.Fatalf("unexpected relation %s", b.Rel)
		}
		total += len(b.Tuples)
	}
	if total != len(ds.Tuples["House"]) {
		t.Errorf("streamed %d of %d", total, len(ds.Tuples["House"]))
	}
}

func TestTriangleOrderValid(t *testing.T) {
	q := TriangleQuery()
	if err := TriangleOrder().Prepare(q); err != nil {
		t.Fatal(err)
	}
	var _ data.Schema = q.Vars()
}

func TestWindowedStream(t *testing.T) {
	ds := GenHousing(HousingConfig{Postcodes: 20, Scale: 5, Seed: 5}) // 100 House tuples
	window, batch := 30, 10
	stream := WindowedStream(ds, "House", window, batch)

	live := map[string]int{}
	maxLive := 0
	for _, b := range stream {
		for _, tup := range b.Tuples {
			if b.Delete {
				live[tup.Key()]--
				if live[tup.Key()] == 0 {
					delete(live, tup.Key())
				}
			} else {
				live[tup.Key()]++
			}
		}
		n := 0
		for _, c := range live {
			n += c
		}
		if n > maxLive {
			maxLive = n
		}
		if n > window+batch {
			t.Fatalf("live tuples %d exceed window+batch %d", n, window+batch)
		}
	}
	if maxLive < window {
		t.Errorf("window never filled: max live %d < %d", maxLive, window)
	}
	// Everything inserted is eventually deleted except the last window.
	total := 0
	for _, c := range live {
		total += c
	}
	if total != window {
		t.Errorf("final live tuples = %d, want %d", total, window)
	}
}
