package datasets

import (
	"math/rand"

	"fivm/internal/data"
	"fivm/internal/query"
	"fivm/internal/vorder"
)

// TwitterConfig scales the synthetic follower graph standing in for the
// Higgs Twitter dataset.
type TwitterConfig struct {
	Users int
	Edges int
	Seed  int64
}

// DefaultTwitter is a laptop-scale configuration.
func DefaultTwitter() TwitterConfig {
	return TwitterConfig{Users: 400, Edges: 9000, Seed: 3}
}

// TriangleQuery returns the triangle query over the three edge relations.
func TriangleQuery() query.Query {
	return query.MustNew("triangle", nil,
		query.RelDef{Name: "R", Schema: data.NewSchema("A", "B")},
		query.RelDef{Name: "S", Schema: data.NewSchema("B", "C")},
		query.RelDef{Name: "T", Schema: data.NewSchema("C", "A")},
	)
}

// TriangleOrder is the order A − B − C used in Appendix B / Figure 9.
func TriangleOrder() *vorder.Order {
	return vorder.MustNew(vorder.V("A", vorder.V("B", vorder.V("C"))))
}

// GenTwitter synthesizes a heavy-tailed digraph (preferential attachment on
// edge endpoints, as social graphs exhibit) and splits its edge list into
// three equal relations R(A,B), S(B,C), T(C,A) — the paper splits the first
// 3M Higgs Twitter records the same way.
func GenTwitter(cfg TwitterConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Dataset{
		Name:     "twitter",
		Query:    TriangleQuery(),
		NewOrder: TriangleOrder,
		Tuples:   make(map[string][]data.Tuple),
		Largest:  "R",
	}
	// Preferential attachment: sample endpoints from the multiset of
	// previous endpoints with probability 1/2, else uniformly.
	pool := make([]int64, 0, 2*cfg.Edges)
	pick := func() int64 {
		if len(pool) > 0 && rng.Intn(2) == 0 {
			return pool[rng.Intn(len(pool))]
		}
		return int64(rng.Intn(cfg.Users))
	}
	seen := make(map[[2]int64]bool, cfg.Edges)
	edges := make([][2]int64, 0, cfg.Edges)
	for len(edges) < cfg.Edges {
		a, b := pick(), pick()
		if a == b || seen[[2]int64{a, b}] {
			// Degenerate or duplicate; draw fresh uniform endpoints to
			// guarantee progress.
			a, b = int64(rng.Intn(cfg.Users)), int64(rng.Intn(cfg.Users))
			if a == b || seen[[2]int64{a, b}] {
				continue
			}
		}
		seen[[2]int64{a, b}] = true
		edges = append(edges, [2]int64{a, b})
		pool = append(pool, a, b)
	}
	third := len(edges) / 3
	for i, e := range edges {
		t := data.Ints(e[0], e[1])
		switch {
		case i < third:
			d.Tuples["R"] = append(d.Tuples["R"], t)
		case i < 2*third:
			d.Tuples["S"] = append(d.Tuples["S"], t)
		default:
			d.Tuples["T"] = append(d.Tuples["T"], t)
		}
	}
	return d
}
