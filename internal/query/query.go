// Package query represents the class of queries F-IVM maintains: natural
// joins with group-by aggregates,
//
//	Q[X1,...,Xf] = ⊕_{Xf+1} ... ⊕_{Xm}  ⊗_{i in [n]} Ri[Si],
//
// where the group-by (free) variables are retained in keys and the bound
// variables are marginalized with task-specific lifting functions. The
// payload ring and the lifting functions are supplied separately when an
// engine is instantiated, so the same Query drives COUNT/SUM aggregates,
// cofactor matrices, and relational payloads alike.
package query

import (
	"fmt"

	"fivm/internal/data"
)

// RelDef names an input relation and its key schema.
type RelDef struct {
	Name   string
	Schema data.Schema
}

// Query is a natural join of relations with a set of free (group-by)
// variables. Bound variables are all variables not listed in Free.
type Query struct {
	Name string
	Rels []RelDef
	Free data.Schema
}

// New builds a query and validates it: relation names must be distinct and
// free variables must occur in some relation.
func New(name string, free data.Schema, rels ...RelDef) (Query, error) {
	q := Query{Name: name, Rels: rels, Free: free}
	seen := make(map[string]bool, len(rels))
	for _, r := range rels {
		if seen[r.Name] {
			return Query{}, fmt.Errorf("query %s: duplicate relation %q", name, r.Name)
		}
		seen[r.Name] = true
	}
	vars := q.Vars()
	for _, v := range free {
		if !vars.Contains(v) {
			return Query{}, fmt.Errorf("query %s: free variable %q not in any relation", name, v)
		}
	}
	return q, nil
}

// MustNew is New that panics on error, for statically known queries.
func MustNew(name string, free data.Schema, rels ...RelDef) Query {
	q, err := New(name, free, rels...)
	if err != nil {
		panic(err)
	}
	return q
}

// Rename returns a copy of the query under a new name (queries are values;
// relation definitions are shared).
func (q Query) Rename(name string) Query {
	q.Name = name
	return q
}

// Vars returns the union of all relation schemas in first-occurrence order.
func (q Query) Vars() data.Schema {
	var out data.Schema
	for _, r := range q.Rels {
		out = out.Union(r.Schema)
	}
	return out
}

// Bound returns the variables not in Free.
func (q Query) Bound() data.Schema { return q.Vars().Minus(q.Free) }

// Rel returns the definition of the named relation.
func (q Query) Rel(name string) (RelDef, bool) {
	for _, r := range q.Rels {
		if r.Name == name {
			return r, true
		}
	}
	return RelDef{}, false
}

// RelNames returns the relation names in definition order.
func (q Query) RelNames() []string {
	out := make([]string, len(q.Rels))
	for i, r := range q.Rels {
		out[i] = r.Name
	}
	return out
}

// RelsWith returns the names of relations whose schema contains variable v.
func (q Query) RelsWith(v string) []string {
	var out []string
	for _, r := range q.Rels {
		if r.Schema.Contains(v) {
			out = append(out, r.Name)
		}
	}
	return out
}

// IsFree reports whether v is a group-by variable.
func (q Query) IsFree(v string) bool { return q.Free.Contains(v) }

// Restrict returns the query over a subset of the relations, keeping as
// free the given variables (used by the recursive-IVM baseline to define
// delta subqueries over relation subsets).
func (q Query) Restrict(name string, relNames []string, free data.Schema) Query {
	sub := Query{Name: name, Free: free}
	keep := make(map[string]bool, len(relNames))
	for _, n := range relNames {
		keep[n] = true
	}
	for _, r := range q.Rels {
		if keep[r.Name] {
			sub.Rels = append(sub.Rels, r)
		}
	}
	return sub
}
