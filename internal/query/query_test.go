package query

import (
	"testing"

	"fivm/internal/data"
)

func testQuery(t *testing.T) Query {
	t.Helper()
	q, err := New("Q", data.NewSchema("A", "C"),
		RelDef{Name: "R", Schema: data.NewSchema("A", "B")},
		RelDef{Name: "S", Schema: data.NewSchema("A", "C", "E")},
		RelDef{Name: "T", Schema: data.NewSchema("C", "D")},
	)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestVarsAndBound(t *testing.T) {
	q := testQuery(t)
	if !q.Vars().SameSet(data.NewSchema("A", "B", "C", "D", "E")) {
		t.Errorf("Vars = %v", q.Vars())
	}
	if !q.Bound().SameSet(data.NewSchema("B", "D", "E")) {
		t.Errorf("Bound = %v", q.Bound())
	}
}

func TestRelLookups(t *testing.T) {
	q := testQuery(t)
	if rd, ok := q.Rel("S"); !ok || len(rd.Schema) != 3 {
		t.Errorf("Rel(S) = %v,%v", rd, ok)
	}
	if _, ok := q.Rel("Z"); ok {
		t.Error("Rel(Z) should not exist")
	}
	if got := q.RelNames(); len(got) != 3 || got[0] != "R" {
		t.Errorf("RelNames = %v", got)
	}
	if got := q.RelsWith("C"); len(got) != 2 {
		t.Errorf("RelsWith(C) = %v", got)
	}
	if !q.IsFree("A") || q.IsFree("B") {
		t.Error("IsFree")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("dup", nil,
		RelDef{Name: "R", Schema: data.NewSchema("A")},
		RelDef{Name: "R", Schema: data.NewSchema("B")},
	); err == nil {
		t.Error("duplicate relation should be rejected")
	}
	if _, err := New("badfree", data.NewSchema("Z"),
		RelDef{Name: "R", Schema: data.NewSchema("A")},
	); err == nil {
		t.Error("free variable outside the query should be rejected")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on invalid query")
		}
	}()
	MustNew("bad", data.NewSchema("Z"), RelDef{Name: "R", Schema: data.NewSchema("A")})
}

func TestRestrict(t *testing.T) {
	q := testQuery(t)
	sub := q.Restrict("sub", []string{"S", "T"}, data.NewSchema("A"))
	if len(sub.Rels) != 2 {
		t.Fatalf("Rels = %v", sub.Rels)
	}
	if !sub.Vars().SameSet(data.NewSchema("A", "C", "D", "E")) {
		t.Errorf("Vars = %v", sub.Vars())
	}
	if !sub.Free.Equal(data.NewSchema("A")) {
		t.Errorf("Free = %v", sub.Free)
	}
}
