package sqlparse

import (
	"math/rand"
	"strings"
	"testing"

	"fivm/internal/data"
	"fivm/internal/ivm"
	"fivm/internal/ring"
	"fivm/internal/vorder"
)

func cat() Catalog {
	return Catalog{
		"R": data.NewSchema("A", "B"),
		"S": data.NewSchema("A", "C", "E"),
		"T": data.NewSchema("C", "D"),
	}
}

func TestParsePaperQuery(t *testing.T) {
	// Example 1.1 verbatim.
	p, err := Parse(`SELECT S.A, S.C, SUM(R.B * T.D * S.E)
		FROM R NATURAL JOIN S NATURAL JOIN T
		GROUP BY S.A, S.C;`, cat())
	if err != nil {
		t.Fatal(err)
	}
	if !p.Query.Free.SameSet(data.NewSchema("A", "C")) {
		t.Errorf("free = %v", p.Query.Free)
	}
	if len(p.Query.Rels) != 3 {
		t.Errorf("rels = %v", p.Query.RelNames())
	}
	if strings.Join(p.SumVars, ",") != "B,D,E" {
		t.Errorf("sum vars = %v", p.SumVars)
	}
	if p.Constant != 1 {
		t.Errorf("constant = %v", p.Constant)
	}
}

func TestParseCountQuery(t *testing.T) {
	// Example 2.2.
	for _, sql := range []string{
		"SELECT SUM(1) FROM R NATURAL JOIN S NATURAL JOIN T;",
		"SELECT COUNT(*) FROM R NATURAL JOIN S NATURAL JOIN T",
	} {
		p, err := Parse(sql, cat())
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if len(p.SumVars) != 0 || len(p.Query.Free) != 0 {
			t.Errorf("%s: parsed %v / %v", sql, p.SumVars, p.Query.Free)
		}
	}
}

func TestParseUnqualifiedColumns(t *testing.T) {
	p, err := Parse("SELECT A, SUM(B) FROM R NATURAL JOIN S GROUP BY A", cat())
	if err != nil {
		t.Fatal(err)
	}
	if !p.Query.Free.Equal(data.NewSchema("A")) || len(p.SumVars) != 1 {
		t.Errorf("parsed %v / %v", p.Query.Free, p.SumVars)
	}
}

func TestParseConstantFactor(t *testing.T) {
	p, err := Parse("SELECT SUM(2 * B) FROM R", cat())
	if err != nil {
		t.Fatal(err)
	}
	if p.Constant != 2 || len(p.SumVars) != 1 {
		t.Errorf("constant %v, vars %v", p.Constant, p.SumVars)
	}
	lift := p.LiftFloat()
	if got := lift("B", data.Int(5)); got != 10 {
		t.Errorf("lift(B,5) = %v, want 10", got)
	}
	if got := lift("A", data.Int(5)); got != 1 {
		t.Errorf("lift(A,5) = %v, want 1", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		sql  string
		frag string
	}{
		{"SELECT SUM(B) FROM Z", "not in catalog"},
		{"SELECT SUM(B), SUM(1) FROM R", "multiple aggregates"},
		{"SELECT A FROM R", "needs a SUM"},
		{"SELECT A, SUM(B) FROM R", "GROUP BY"},
		{"SELECT SUM(Z) FROM R", "not in any relation"},
		{"SELECT A, SUM(A) FROM R GROUP BY A", "GROUP BY column"},
		{"SELECT SUM(B) FROM R NATURAL R", "JOIN"},
		{"SELECT SUM(B FROM R", ")"},
		{"SELECT SUM(2) FROM R", "SUM(1)"},
		{"SELECT R.Z, SUM(B) FROM R GROUP BY R.Z", "no column"},
		{"SELECT Q.B, SUM(B) FROM R GROUP BY Q.B", "unknown relation"},
		{"SELECT SUM(B) FROM R; extra", "trailing"},
		{"FROM R", "SELECT"},
		{"SELECT SUM(#) FROM R", "unexpected character"},
	}
	for _, c := range cases {
		_, err := Parse(c.sql, cat())
		if err == nil {
			t.Errorf("%q: expected error", c.sql)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%q: error %q does not mention %q", c.sql, err, c.frag)
		}
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse("select sum(1) from R natural join S group by A, C;", Catalog{
		"R": data.NewSchema("A", "B"),
		"S": data.NewSchema("A", "C"),
	}); err == nil {
		t.Error("plain columns absent from select list should still fail the GROUP BY check")
	}
	p, err := Parse("select A, C, sum(B) from R natural join S group by A, C;", Catalog{
		"R": data.NewSchema("A", "B"),
		"S": data.NewSchema("A", "C"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Query.Free.SameSet(data.NewSchema("A", "C")) {
		t.Errorf("free = %v", p.Query.Free)
	}
}

// TestParsedQueryEndToEnd drives a parsed query through the engine and
// checks the aggregate against a brute-force computation.
func TestParsedQueryEndToEnd(t *testing.T) {
	p, err := Parse(`SELECT S.A, S.C, SUM(R.B * T.D * S.E)
		FROM R NATURAL JOIN S NATURAL JOIN T GROUP BY S.A, S.C`, cat())
	if err != nil {
		t.Fatal(err)
	}
	o, err := vorder.Build(p.Query)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := ivm.New[int64](p.Query, o, ring.Int{}, p.LiftInt(), ivm.Options[int64]{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Init(); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	var rTuples, sTuples, tTuples []map[string]int64
	insert := func(rel string, schema data.Schema, store *[]map[string]int64) {
		d := data.NewRelation[int64](ring.Int{}, schema)
		m := map[string]int64{}
		tup := make(data.Tuple, len(schema))
		for i, v := range schema {
			m[v] = int64(rng.Intn(4))
			tup[i] = data.Int(m[v])
		}
		d.Merge(tup, 1)
		*store = append(*store, m)
		if err := eng.ApplyDelta(rel, d); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 25; i++ {
		insert("R", cat()["R"], &rTuples)
		insert("S", cat()["S"], &sTuples)
		insert("T", cat()["T"], &tTuples)
	}

	// Brute force SUM(B*D*E) per (A, C).
	want := map[[2]int64]int64{}
	for _, r := range rTuples {
		for _, s := range sTuples {
			if r["A"] != s["A"] {
				continue
			}
			for _, tt := range tTuples {
				if s["C"] != tt["C"] {
					continue
				}
				want[[2]int64{s["A"], s["C"]}] += r["B"] * tt["D"] * s["E"]
			}
		}
	}
	got := map[[2]int64]int64{}
	eng.Result().Iterate(func(tup data.Tuple, pay int64) bool {
		ai := eng.Result().Schema().IndexOf("A")
		ci := eng.Result().Schema().IndexOf("C")
		got[[2]int64{tup[ai].AsInt(), tup[ci].AsInt()}] = pay
		return true
	})
	for k, v := range want {
		if v == 0 {
			continue
		}
		if got[k] != v {
			t.Fatalf("group %v: %d, want %d", k, got[k], v)
		}
	}
	for k, v := range got {
		if want[k] != v {
			t.Fatalf("unexpected group %v = %d", k, v)
		}
	}
}
