package sqlparse

// StmtKind discriminates the statement forms of the dialect.
type StmtKind int

const (
	// StmtSelect is a bare SELECT query.
	StmtSelect StmtKind = iota
	// StmtCreateView is CREATE VIEW <name> AS SELECT ...
	StmtCreateView
	// StmtDropView is DROP VIEW <name>.
	StmtDropView
)

func (k StmtKind) String() string {
	switch k {
	case StmtSelect:
		return "SELECT"
	case StmtCreateView:
		return "CREATE VIEW"
	case StmtDropView:
		return "DROP VIEW"
	}
	return "unknown"
}

// Statement is one parsed statement: a query, or a view-lifecycle DDL
// command driving the same maintenance path (db.CreateView / db.DropView).
type Statement struct {
	Kind StmtKind
	// ViewName is the view's name for CREATE VIEW and DROP VIEW.
	ViewName string
	// Select is the parsed query body for StmtSelect and StmtCreateView.
	Select Parsed
}

// ParseStatement parses one statement of the dialect: a SELECT query,
// CREATE VIEW <name> AS SELECT ..., or DROP VIEW <name>. SELECT bodies are
// validated against the catalog exactly as Parse does; view names share the
// identifier syntax of relation names.
func ParseStatement(sql string, cat Catalog) (Statement, error) {
	toks, err := lex(sql)
	if err != nil {
		return Statement{}, err
	}
	p := &parser{toks: toks, cat: cat}

	switch {
	case isKeyword(p.peek(), "create"):
		p.next()
		if err := p.expectKeyword("view"); err != nil {
			return Statement{}, err
		}
		name, err := p.expect(tokIdent, "view name")
		if err != nil {
			return Statement{}, err
		}
		if isKeyword(name, "as") || isKeyword(name, "select") {
			return Statement{}, errAt(name, "expected view name, got %s", name)
		}
		if err := p.expectKeyword("as"); err != nil {
			return Statement{}, err
		}
		sel, err := p.parseSelect(name.text)
		if err != nil {
			return Statement{}, err
		}
		if err := p.end(); err != nil {
			return Statement{}, err
		}
		return Statement{Kind: StmtCreateView, ViewName: name.text, Select: sel}, nil

	case isKeyword(p.peek(), "drop"):
		p.next()
		if err := p.expectKeyword("view"); err != nil {
			return Statement{}, err
		}
		name, err := p.expect(tokIdent, "view name")
		if err != nil {
			return Statement{}, err
		}
		if err := p.end(); err != nil {
			return Statement{}, err
		}
		return Statement{Kind: StmtDropView, ViewName: name.text}, nil

	default:
		sel, err := p.parseSelect("sql")
		if err != nil {
			return Statement{}, err
		}
		if err := p.end(); err != nil {
			return Statement{}, err
		}
		return Statement{Kind: StmtSelect, Select: sel}, nil
	}
}
