package sqlparse

import (
	"fmt"
	"strings"

	"fivm/internal/data"
	"fivm/internal/query"
)

// Catalog supplies the schema of each relation named in a query.
type Catalog map[string]data.Schema

// Parsed is a parsed query: the internal join-aggregate representation plus
// the aggregate's structure.
type Parsed struct {
	// Query is the natural join with the GROUP BY variables as Free.
	Query query.Query
	// SumVars lists the variables multiplied inside SUM(...); empty for
	// SUM(1) / COUNT(*).
	SumVars []string
	// Constant is the literal factor inside SUM (1 unless written
	// otherwise, e.g. SUM(2*B)).
	Constant float64
}

// LiftInt returns the Z-ring lifting realizing the aggregate: a bound
// variable contributes its value if it appears in SUM, else 1. The constant
// factor is folded into the first summed variable; for pure COUNT queries
// it must be 1.
func (p Parsed) LiftInt() data.LiftFunc[int64] {
	in := make(map[string]bool, len(p.SumVars))
	for _, v := range p.SumVars {
		in[v] = true
	}
	return func(v string, x data.Value) int64 {
		if in[v] {
			return x.AsInt()
		}
		return 1
	}
}

// LiftFloat returns the R-ring lifting realizing the aggregate.
func (p Parsed) LiftFloat() data.LiftFunc[float64] {
	in := make(map[string]bool, len(p.SumVars))
	for _, v := range p.SumVars {
		in[v] = true
	}
	first := ""
	if len(p.SumVars) > 0 {
		first = p.SumVars[0]
	}
	return func(v string, x data.Value) float64 {
		out := 1.0
		if in[v] {
			out = x.AsFloat()
		}
		// The constant factor applies once per joined tuple; the first
		// summed variable is lifted exactly once, so it carries it.
		if v == first && first != "" {
			out *= p.Constant
		}
		return out
	}
}

type parser struct {
	toks []token
	pos  int
	cat  Catalog
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, fmt.Errorf("sqlparse: expected %s, got %s at offset %d", what, t, t.pos)
	}
	return t, nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if !isKeyword(t, kw) {
		return fmt.Errorf("sqlparse: expected %s, got %s at offset %d", strings.ToUpper(kw), t, t.pos)
	}
	return nil
}

// column parses [rel.]var and returns the variable name; the qualifier is
// validated against the catalog when present.
func (p *parser) column() (string, error) {
	t, err := p.expect(tokIdent, "column name")
	if err != nil {
		return "", err
	}
	name := t.text
	if p.peek().kind == tokDot {
		p.next()
		v, err := p.expect(tokIdent, "column name after qualifier")
		if err != nil {
			return "", err
		}
		schema, ok := p.cat[name]
		if !ok {
			return "", fmt.Errorf("sqlparse: unknown relation %q qualifying %q", name, v.text)
		}
		if !schema.Contains(v.text) {
			return "", fmt.Errorf("sqlparse: relation %q has no column %q", name, v.text)
		}
		return v.text, nil
	}
	return name, nil
}

// Parse parses one query of the dialect against the catalog.
func Parse(sql string, cat Catalog) (Parsed, error) {
	toks, err := lex(sql)
	if err != nil {
		return Parsed{}, err
	}
	p := &parser{toks: toks, cat: cat}

	if err := p.expectKeyword("select"); err != nil {
		return Parsed{}, err
	}

	// Select list: group-by columns then at most one SUM(...) or COUNT(*).
	var selectCols []string
	out := Parsed{Constant: 1}
	sawAgg := false
	for {
		t := p.peek()
		switch {
		case isKeyword(t, "sum"):
			if sawAgg {
				return Parsed{}, fmt.Errorf("sqlparse: multiple aggregates at offset %d", t.pos)
			}
			sawAgg = true
			p.next()
			if _, err := p.expect(tokLParen, "("); err != nil {
				return Parsed{}, err
			}
			// Product of terms: numbers and columns separated by '*'.
			for {
				tt := p.peek()
				switch tt.kind {
				case tokNumber:
					p.next()
					var c float64
					if _, err := fmt.Sscanf(tt.text, "%g", &c); err != nil {
						return Parsed{}, fmt.Errorf("sqlparse: bad number %q at offset %d", tt.text, tt.pos)
					}
					out.Constant *= c
				case tokIdent:
					v, err := p.column()
					if err != nil {
						return Parsed{}, err
					}
					out.SumVars = append(out.SumVars, v)
				default:
					return Parsed{}, fmt.Errorf("sqlparse: expected SUM term, got %s at offset %d", tt, tt.pos)
				}
				if p.peek().kind == tokStar {
					p.next()
					continue
				}
				break
			}
			if _, err := p.expect(tokRParen, ")"); err != nil {
				return Parsed{}, err
			}
		case isKeyword(t, "count"):
			if sawAgg {
				return Parsed{}, fmt.Errorf("sqlparse: multiple aggregates at offset %d", t.pos)
			}
			sawAgg = true
			p.next()
			if _, err := p.expect(tokLParen, "("); err != nil {
				return Parsed{}, err
			}
			if p.peek().kind == tokStar {
				p.next()
			}
			if _, err := p.expect(tokRParen, ")"); err != nil {
				return Parsed{}, err
			}
		case t.kind == tokIdent:
			v, err := p.column()
			if err != nil {
				return Parsed{}, err
			}
			selectCols = append(selectCols, v)
		default:
			return Parsed{}, fmt.Errorf("sqlparse: unexpected %s in select list at offset %d", t, t.pos)
		}
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if !sawAgg {
		return Parsed{}, fmt.Errorf("sqlparse: the select list needs a SUM(...) or COUNT(*) aggregate")
	}

	if err := p.expectKeyword("from"); err != nil {
		return Parsed{}, err
	}
	var rels []query.RelDef
	for {
		t, err := p.expect(tokIdent, "relation name")
		if err != nil {
			return Parsed{}, err
		}
		schema, ok := p.cat[t.text]
		if !ok {
			return Parsed{}, fmt.Errorf("sqlparse: relation %q not in catalog", t.text)
		}
		rels = append(rels, query.RelDef{Name: t.text, Schema: schema})

		if isKeyword(p.peek(), "natural") {
			p.next()
			if err := p.expectKeyword("join"); err != nil {
				return Parsed{}, err
			}
			continue
		}
		break
	}

	// Optional GROUP BY, which must repeat the plain select columns.
	var free data.Schema
	if isKeyword(p.peek(), "group") {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return Parsed{}, err
		}
		for {
			v, err := p.column()
			if err != nil {
				return Parsed{}, err
			}
			free = free.Union(data.Schema{v})
			if p.peek().kind == tokComma {
				p.next()
				continue
			}
			break
		}
	}
	if p.peek().kind == tokSemicolon {
		p.next()
	}
	if t := p.peek(); t.kind != tokEOF {
		return Parsed{}, fmt.Errorf("sqlparse: trailing input %s at offset %d", t, t.pos)
	}

	// The plain select columns must match the GROUP BY set.
	sel := data.Schema(nil)
	for _, c := range selectCols {
		sel = sel.Union(data.Schema{c})
	}
	if !sel.SameSet(free) {
		return Parsed{}, fmt.Errorf("sqlparse: select columns %v must equal GROUP BY %v", sel, free)
	}

	q, err := query.New("sql", free, rels...)
	if err != nil {
		return Parsed{}, err
	}
	// Summed and grouping variables must occur in the join.
	vars := q.Vars()
	for _, v := range out.SumVars {
		if !vars.Contains(v) {
			return Parsed{}, fmt.Errorf("sqlparse: SUM variable %q not in any relation", v)
		}
		if free.Contains(v) {
			return Parsed{}, fmt.Errorf("sqlparse: SUM variable %q is a GROUP BY column", v)
		}
	}
	if len(out.SumVars) == 0 && out.Constant != 1 {
		return Parsed{}, fmt.Errorf("sqlparse: SUM of a bare constant other than 1 is not supported; use SUM(1)")
	}
	out.Query = q
	return out, nil
}
