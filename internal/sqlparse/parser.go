package sqlparse

import (
	"fmt"
	"strings"

	"fivm/internal/data"
	"fivm/internal/query"
)

// Catalog supplies the schema of each relation named in a query.
type Catalog map[string]data.Schema

// ParseError is a parse failure with its position: the byte offset into the
// input and the token the parser was looking at. Every error returned by
// Parse, ParseStatement, and the lexer is (or wraps) one, so callers can
// point at the offending spot.
type ParseError struct {
	// Msg describes the failure.
	Msg string
	// Pos is the byte offset of the offending token in the input.
	Pos int
	// Token is the offending token's text ("" at end of input).
	Token string
}

func (e *ParseError) Error() string {
	near := "end of input"
	if e.Token != "" {
		near = fmt.Sprintf("%q", e.Token)
	}
	return fmt.Sprintf("sqlparse: %s at offset %d near %s", e.Msg, e.Pos, near)
}

// errAt builds a ParseError anchored at a token.
func errAt(t token, format string, args ...any) error {
	return &ParseError{Msg: fmt.Sprintf(format, args...), Pos: t.pos, Token: t.text}
}

// Parsed is a parsed query: the internal join-aggregate representation plus
// the aggregate's structure.
type Parsed struct {
	// Query is the natural join with the GROUP BY variables as Free.
	Query query.Query
	// SumVars lists the variables multiplied inside SUM(...); empty for
	// SUM(1) / COUNT(*).
	SumVars []string
	// Constant is the literal factor inside SUM (1 unless written
	// otherwise, e.g. SUM(2*B)).
	Constant float64
}

// LiftInt returns the Z-ring lifting realizing the aggregate: a bound
// variable contributes its value if it appears in SUM, else 1. The constant
// factor is folded into the first summed variable; for pure COUNT queries
// it must be 1.
func (p Parsed) LiftInt() data.LiftFunc[int64] {
	in := make(map[string]bool, len(p.SumVars))
	for _, v := range p.SumVars {
		in[v] = true
	}
	return func(v string, x data.Value) int64 {
		if in[v] {
			return x.AsInt()
		}
		return 1
	}
}

// LiftFloat returns the R-ring lifting realizing the aggregate.
func (p Parsed) LiftFloat() data.LiftFunc[float64] {
	in := make(map[string]bool, len(p.SumVars))
	for _, v := range p.SumVars {
		in[v] = true
	}
	first := ""
	if len(p.SumVars) > 0 {
		first = p.SumVars[0]
	}
	return func(v string, x data.Value) float64 {
		out := 1.0
		if in[v] {
			out = x.AsFloat()
		}
		// The constant factor applies once per joined tuple; the first
		// summed variable is lifted exactly once, so it carries it.
		if v == first && first != "" {
			out *= p.Constant
		}
		return out
	}
}

type parser struct {
	toks []token
	pos  int
	cat  Catalog
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, errAt(t, "expected %s, got %s", what, t)
	}
	return t, nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if !isKeyword(t, kw) {
		return errAt(t, "expected %s, got %s", strings.ToUpper(kw), t)
	}
	return nil
}

// column parses [rel.]var and returns the variable name with the token that
// names it; the qualifier is validated against the catalog when present.
func (p *parser) column() (string, token, error) {
	t, err := p.expect(tokIdent, "column name")
	if err != nil {
		return "", t, err
	}
	name := t.text
	if p.peek().kind == tokDot {
		p.next()
		v, err := p.expect(tokIdent, "column name after qualifier")
		if err != nil {
			return "", v, err
		}
		schema, ok := p.cat[name]
		if !ok {
			return "", t, errAt(t, "unknown relation %q qualifying %q", name, v.text)
		}
		if !schema.Contains(v.text) {
			return "", v, errAt(v, "relation %q has no column %q", name, v.text)
		}
		return v.text, v, nil
	}
	return name, t, nil
}

// end consumes an optional semicolon and requires end of input.
func (p *parser) end() error {
	if p.peek().kind == tokSemicolon {
		p.next()
	}
	if t := p.peek(); t.kind != tokEOF {
		return errAt(t, "trailing input %s", t)
	}
	return nil
}

// Parse parses one query of the dialect against the catalog.
func Parse(sql string, cat Catalog) (Parsed, error) {
	toks, err := lex(sql)
	if err != nil {
		return Parsed{}, err
	}
	p := &parser{toks: toks, cat: cat}
	out, err := p.parseSelect("sql")
	if err != nil {
		return Parsed{}, err
	}
	if err := p.end(); err != nil {
		return Parsed{}, err
	}
	return out, nil
}

// parseSelect parses SELECT ... [GROUP BY ...] from the current position,
// leaving the parser on the first token after the query body. The resulting
// query carries the given name.
func (p *parser) parseSelect(name string) (Parsed, error) {
	if err := p.expectKeyword("select"); err != nil {
		return Parsed{}, err
	}

	// Select list: group-by columns then at most one SUM(...) or COUNT(*).
	type selCol struct {
		name string
		tok  token
	}
	var selectCols []selCol
	out := Parsed{Constant: 1}
	var sumVarToks []token
	sawAgg := false
	for {
		t := p.peek()
		switch {
		case isKeyword(t, "sum"):
			if sawAgg {
				return Parsed{}, errAt(t, "multiple aggregates")
			}
			sawAgg = true
			p.next()
			if _, err := p.expect(tokLParen, "("); err != nil {
				return Parsed{}, err
			}
			// Product of terms: numbers and columns separated by '*'.
			for {
				tt := p.peek()
				switch tt.kind {
				case tokNumber:
					p.next()
					var c float64
					if _, err := fmt.Sscanf(tt.text, "%g", &c); err != nil {
						return Parsed{}, errAt(tt, "bad number %q", tt.text)
					}
					out.Constant *= c
				case tokIdent:
					v, vt, err := p.column()
					if err != nil {
						return Parsed{}, err
					}
					out.SumVars = append(out.SumVars, v)
					sumVarToks = append(sumVarToks, vt)
				default:
					return Parsed{}, errAt(tt, "expected SUM term, got %s", tt)
				}
				if p.peek().kind == tokStar {
					p.next()
					continue
				}
				break
			}
			if _, err := p.expect(tokRParen, ")"); err != nil {
				return Parsed{}, err
			}
		case isKeyword(t, "count"):
			if sawAgg {
				return Parsed{}, errAt(t, "multiple aggregates")
			}
			sawAgg = true
			p.next()
			if _, err := p.expect(tokLParen, "("); err != nil {
				return Parsed{}, err
			}
			if p.peek().kind == tokStar {
				p.next()
			}
			if _, err := p.expect(tokRParen, ")"); err != nil {
				return Parsed{}, err
			}
		case t.kind == tokIdent:
			v, vt, err := p.column()
			if err != nil {
				return Parsed{}, err
			}
			selectCols = append(selectCols, selCol{name: v, tok: vt})
		default:
			return Parsed{}, errAt(t, "unexpected %s in select list", t)
		}
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if !sawAgg {
		return Parsed{}, errAt(p.peek(), "the select list needs a SUM(...) or COUNT(*) aggregate")
	}

	if err := p.expectKeyword("from"); err != nil {
		return Parsed{}, err
	}
	var rels []query.RelDef
	seenRel := make(map[string]bool)
	for {
		t, err := p.expect(tokIdent, "relation name")
		if err != nil {
			return Parsed{}, err
		}
		schema, ok := p.cat[t.text]
		if !ok {
			return Parsed{}, errAt(t, "unknown relation %q (not in catalog)", t.text)
		}
		if seenRel[t.text] {
			return Parsed{}, errAt(t, "duplicate relation %q in FROM", t.text)
		}
		seenRel[t.text] = true
		rels = append(rels, query.RelDef{Name: t.text, Schema: schema})

		if isKeyword(p.peek(), "natural") {
			p.next()
			if err := p.expectKeyword("join"); err != nil {
				return Parsed{}, err
			}
			continue
		}
		break
	}

	// Optional GROUP BY, which must repeat the plain select columns.
	var free data.Schema
	groupToks := make(map[string]token)
	if isKeyword(p.peek(), "group") {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return Parsed{}, err
		}
		for {
			v, vt, err := p.column()
			if err != nil {
				return Parsed{}, err
			}
			free = free.Union(data.Schema{v})
			groupToks[v] = vt
			if p.peek().kind == tokComma {
				p.next()
				continue
			}
			break
		}
	}

	// The plain select columns must match the GROUP BY set, both ways.
	sel := data.Schema(nil)
	for _, c := range selectCols {
		if !free.Contains(c.name) {
			return Parsed{}, errAt(c.tok, "select column %q missing from GROUP BY", c.name)
		}
		sel = sel.Union(data.Schema{c.name})
	}
	for _, v := range free {
		if !sel.Contains(v) {
			return Parsed{}, errAt(groupToks[v], "GROUP BY column %q missing from the select list", v)
		}
	}

	// Summed and grouping variables must occur in the join.
	var vars data.Schema
	for _, rd := range rels {
		vars = vars.Union(rd.Schema)
	}
	for i, v := range out.SumVars {
		if !vars.Contains(v) {
			return Parsed{}, errAt(sumVarToks[i], "SUM variable %q not in any relation", v)
		}
		if free.Contains(v) {
			return Parsed{}, errAt(sumVarToks[i], "SUM variable %q is a GROUP BY column", v)
		}
	}
	for _, v := range free {
		if !vars.Contains(v) {
			return Parsed{}, errAt(groupToks[v], "GROUP BY column %q not in any relation", v)
		}
	}
	q, err := query.New(name, free, rels...)
	if err != nil {
		return Parsed{}, err
	}
	if len(out.SumVars) == 0 && out.Constant != 1 {
		return Parsed{}, errAt(p.peek(), "SUM of a bare constant other than 1 is not supported; use SUM(1)")
	}
	out.Query = q
	return out, nil
}
