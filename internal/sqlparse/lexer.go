// Package sqlparse parses the SQL dialect the paper uses for its queries —
// natural joins with a single SUM aggregate over a product of variables and
// an optional GROUP BY:
//
//	SELECT S.A, S.C, SUM(R.B * T.D * S.E)
//	FROM R NATURAL JOIN S NATURAL JOIN T
//	GROUP BY S.A, S.C;
//
// Relation schemas come from a catalog (SQL text does not carry them). The
// parser produces the internal query representation plus the lifting
// functions that realize the aggregate in the Z or R rings, so parsed
// queries plug directly into any maintenance strategy.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokLParen
	tokRParen
	tokComma
	tokStar
	tokDot
	tokSemicolon
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex splits the input into tokens; identifiers keep their original case,
// keyword matching is case-insensitive at the parser level.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", i})
			i++
		case c == ';':
			toks = append(toks, token{tokSemicolon, ";", i})
			i++
		case unicode.IsDigit(c):
			j := i
			for j < len(input) && (unicode.IsDigit(rune(input[j])) || input[j] == '.') {
				j++
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(input) && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, input[i:j], i})
			i = j
		default:
			return nil, &ParseError{Msg: fmt.Sprintf("unexpected character %q", c), Pos: i, Token: string(c)}
		}
	}
	toks = append(toks, token{tokEOF, "", len(input)})
	return toks, nil
}

func isKeyword(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
