package sqlparse

import (
	"strings"
	"testing"
)

// FuzzParseStatement hammers the statement parser with arbitrary input.
// Recovery re-parses persisted DDL from the WAL catalog, so the parser must
// never panic and must keep its error contract (a non-nil Statement result
// only on nil error) for any byte sequence — including torn or corrupted
// SQL that a damaged checkpoint could hand it.
//
// Run the full fuzzer with:
//
//	go test ./internal/sqlparse -fuzz=FuzzParseStatement
func FuzzParseStatement(f *testing.F) {
	// Valid statements of every kind.
	f.Add("SELECT A, SUM(B) FROM R NATURAL JOIN S GROUP BY A;")
	f.Add("SELECT S.A, S.C, SUM(R.B * T.D * S.E) FROM R NATURAL JOIN S NATURAL JOIN T GROUP BY S.A, S.C")
	f.Add("CREATE VIEW sums AS SELECT A, SUM(B * D) FROM R NATURAL JOIN S NATURAL JOIN T GROUP BY A;")
	f.Add("CREATE VIEW v AS SELECT SUM(B) FROM R")
	f.Add("DROP VIEW sums")
	f.Add("drop view sums")
	f.Add("SELECT COUNT(*) FROM R")
	// The existing malformed-input corpus: every class of parse error.
	f.Add("SELECT A, C, SUM(B) FROM R NATURAL JOIN S NATURAL JOIN T GROUP BY A")
	f.Add("SELECT SUM(B) FROM R NATURAL JOIN Nope")
	f.Add("SELECT SUM(B) FROM R NATURAL JOIN S NATURAL JOIN R")
	f.Add("SELECT SUM(B) FROM R GROUP BY , A")
	f.Add("SELECT A, SUM(B) FROM R NATURAL JOIN S GROUP BY A, E")
	f.Add("SELECT Zz.A, SUM(B) FROM R GROUP BY Zz.A")
	f.Add("CREATE VIEW AS SELECT SUM(B) FROM R")
	f.Add("CREATE VIEW v SELECT SUM(B) FROM R")
	f.Add("CREATE VIEW v AS SELECT SUM(B) FROM Z")
	f.Add("CREATE TABLE v AS SELECT SUM(B) FROM R")
	f.Add("DROP VIEW")
	f.Add("DROP VIEW v extra")
	// Lexical edge cases.
	f.Add("")
	f.Add(";")
	f.Add("SELECT")
	f.Add("SELECT \x00 FROM R")
	f.Add("SELECT A FROM R -- comment")
	f.Add(strings.Repeat("(", 100))
	f.Add("SELECT " + strings.Repeat("A,", 200) + " SUM(B) FROM R GROUP BY A")

	catalog := cat()
	f.Fuzz(func(t *testing.T, sql string) {
		st, err := ParseStatement(sql, catalog)
		if err != nil {
			// The error must render without panicking (the repl prints it
			// with caret positioning derived from the offset).
			_ = err.Error()
			return
		}
		// Accepted statements keep their structural invariants: a usable
		// kind, a view name exactly for the DDL kinds, and a SELECT body
		// for anything that defines one.
		switch st.Kind {
		case StmtSelect:
			if len(st.Select.Query.Rels) == 0 {
				t.Fatalf("%q: StmtSelect without relations", sql)
			}
		case StmtCreateView:
			if st.ViewName == "" || len(st.Select.Query.Rels) == 0 {
				t.Fatalf("%q: CREATE VIEW missing name or body", sql)
			}
		case StmtDropView:
			if st.ViewName == "" {
				t.Fatalf("%q: DROP VIEW without a name", sql)
			}
		default:
			t.Fatalf("%q: unknown statement kind %v", sql, st.Kind)
		}
	})
}
