package sqlparse

import (
	"errors"
	"strings"
	"testing"

	"fivm/internal/data"
)

// TestParseErrorPositions checks that malformed input is reported as a
// ParseError carrying the offset and token of the offending spot.
func TestParseErrorPositions(t *testing.T) {
	cases := []struct {
		name string
		sql  string
		frag string // expected message fragment
		tok  string // expected offending token
		pos  int    // expected byte offset of the token
	}{
		{
			name: "missing GROUP BY column",
			sql:  "SELECT A, C, SUM(B) FROM R NATURAL JOIN S NATURAL JOIN T GROUP BY A",
			frag: "missing from GROUP BY",
			tok:  "C",
			pos:  10,
		},
		{
			name: "GROUP BY column missing from select",
			sql:  "SELECT A, SUM(B) FROM R NATURAL JOIN S GROUP BY A, E",
			frag: "missing from the select list",
			tok:  "E",
			pos:  51,
		},
		{
			name: "unknown relation",
			sql:  "SELECT SUM(B) FROM R NATURAL JOIN Nope",
			frag: `unknown relation "Nope"`,
			tok:  "Nope",
			pos:  34,
		},
		{
			name: "duplicate alias",
			sql:  "SELECT SUM(B) FROM R NATURAL JOIN S NATURAL JOIN R",
			frag: `duplicate relation "R"`,
			tok:  "R",
			pos:  49,
		},
		{
			name: "bad qualifier",
			sql:  "SELECT Zz.A, SUM(B) FROM R GROUP BY Zz.A",
			frag: "unknown relation",
			tok:  "Zz",
			pos:  7,
		},
		{
			name: "stray token",
			sql:  "SELECT SUM(B) FROM R GROUP BY , A",
			frag: "column name",
			tok:  ",",
			pos:  30,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.sql, cat())
			if err == nil {
				t.Fatalf("%q: expected error", c.sql)
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("%q: error %v is not a ParseError", c.sql, err)
			}
			if !strings.Contains(pe.Msg, c.frag) {
				t.Errorf("%q: message %q does not mention %q", c.sql, pe.Msg, c.frag)
			}
			if pe.Token != c.tok {
				t.Errorf("%q: offending token %q, want %q", c.sql, pe.Token, c.tok)
			}
			if pe.Pos != c.pos {
				t.Errorf("%q: offset %d, want %d", c.sql, pe.Pos, c.pos)
			}
			if !strings.Contains(err.Error(), "offset") {
				t.Errorf("%q: rendered error %q lacks the offset", c.sql, err)
			}
		})
	}
}

func TestParseStatementSelect(t *testing.T) {
	st, err := ParseStatement("SELECT A, SUM(B) FROM R NATURAL JOIN S GROUP BY A;", cat())
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != StmtSelect {
		t.Fatalf("kind = %v", st.Kind)
	}
	if !st.Select.Query.Free.SameSet(data.NewSchema("A")) {
		t.Errorf("free = %v", st.Select.Query.Free)
	}
}

func TestParseStatementCreateView(t *testing.T) {
	st, err := ParseStatement(
		"CREATE VIEW sums AS SELECT A, SUM(B * D) FROM R NATURAL JOIN S NATURAL JOIN T GROUP BY A;", cat())
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != StmtCreateView || st.ViewName != "sums" {
		t.Fatalf("kind = %v name = %q", st.Kind, st.ViewName)
	}
	if st.Select.Query.Name != "sums" {
		t.Errorf("query name = %q, want the view name", st.Select.Query.Name)
	}
	if len(st.Select.SumVars) != 2 {
		t.Errorf("sum vars = %v", st.Select.SumVars)
	}
}

func TestParseStatementDropView(t *testing.T) {
	st, err := ParseStatement("drop view sums", cat())
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != StmtDropView || st.ViewName != "sums" {
		t.Fatalf("kind = %v name = %q", st.Kind, st.ViewName)
	}
}

func TestParseStatementErrors(t *testing.T) {
	cases := []struct {
		sql  string
		frag string
	}{
		{"CREATE VIEW AS SELECT SUM(B) FROM R", "view name"},
		{"CREATE VIEW v SELECT SUM(B) FROM R", "AS"},
		{"CREATE TABLE v AS SELECT SUM(B) FROM R", "VIEW"},
		{"DROP VIEW", "view name"},
		{"DROP VIEW v extra", "trailing"},
		{"CREATE VIEW v AS SELECT SUM(B) FROM Z", "not in catalog"},
	}
	for _, c := range cases {
		_, err := ParseStatement(c.sql, cat())
		if err == nil {
			t.Errorf("%q: expected error", c.sql)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%q: error %q does not mention %q", c.sql, err, c.frag)
		}
	}
}
