// Package factorized maintains conjunctive query results under updates in
// the three representations the paper compares in Section 6.3 and Figure 8:
//
//   - ListKeys: the result is a relation keyed by the output tuples with
//     integer multiplicities (the classical listing representation in keys).
//   - ListPayloads: all variables are marginalized; the relational data ring
//     F[Z] carries the entire listing result in the root payload.
//   - FactPayloads: like ListPayloads, but every view projects its payload
//     onto its own marginalized variable, so the result is a factorized
//     representation distributed over the view tree's payloads, linked by
//     the view keys (paper Example 6.6). It supports constant-delay
//     enumeration of the distinct result tuples.
//
// All three modes maintain the same query over the same variable order; they
// differ only in ring and payload handling — the paper's point that payload
// rings factor out representation choices.
package factorized

import (
	"fmt"

	"fivm/internal/data"
	"fivm/internal/ivm"
	"fivm/internal/query"
	"fivm/internal/ring"
	"fivm/internal/viewtree"
	"fivm/internal/vorder"
)

// Mode selects the result representation.
type Mode int

// The three representations of Figure 8.
const (
	ListKeys Mode = iota
	ListPayloads
	FactPayloads
)

// String names the mode as in the paper's legends.
func (m Mode) String() string {
	switch m {
	case ListKeys:
		return "List keys"
	case ListPayloads:
		return "List payloads"
	case FactPayloads:
		return "Fact payloads"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Result maintains a conjunctive query result in one of the three
// representations. Updates are expressed as multiplicity deltas.
type Result struct {
	Mode Mode
	// Output lists the conjunctive query's head (free) variables.
	Output data.Schema

	q       query.Query
	keysEng *ivm.Engine[int64]
	relEng  *ivm.Engine[*data.Multiset]
}

// New builds a maintained result. q.Free must name the conjunctive query's
// output variables; for the payload modes they are moved into payloads (the
// engine query marginalizes everything). The variable order must have the
// output variables above the bound ones for FactPayloads enumeration.
//
// Updates must keep base multiplicities non-negative (deletions only remove
// existing tuples). The factorized representation stores per-value
// derivation counts; over-deletion can cancel a projected count to zero
// while derivations remain, which loses information — the same caveat
// applies to the paper's multiplicity-annotated factorizations.
func New(mode Mode, q query.Query, o *vorder.Order, updatable []string) (*Result, error) {
	r := &Result{Mode: mode, Output: q.Free.Clone(), q: q}
	switch mode {
	case ListKeys:
		eng, err := ivm.New[int64](q, o, ring.Int{}, func(string, data.Value) int64 { return 1 },
			ivm.Options[int64]{Updatable: updatable, ComposeChains: true})
		if err != nil {
			return nil, err
		}
		r.keysEng = eng
		return r, nil

	case ListPayloads, FactPayloads:
		free := q.Free
		// The engine query marginalizes every variable; the output
		// variables are lifted into relational payloads.
		allBound := query.MustNew(q.Name, nil, q.Rels...)
		lift := func(v string, x data.Value) *data.Multiset {
			if free.Contains(v) {
				return data.SingletonMultiset(v, x)
			}
			return data.UnitMultiset()
		}
		// Chain composition keeps one view per wide relation instead of one
		// per local variable — for the factorized representation this means
		// payloads over each relation's composed variables, which is both
		// valid and far more compact (the paper's wide-relation treatment).
		opts := ivm.Options[*data.Multiset]{Updatable: updatable, ComposeChains: true}
		if mode == FactPayloads {
			// The factorized representation is distributed over every view,
			// so every inner view must be materialized regardless of the
			// update workload.
			opts.MaterializeAll = true
			opts.PayloadTransform = func(n *viewtree.Node, p *data.Multiset) *data.Multiset {
				return p.ProjectOnto(data.Schema(n.Marg).Intersect(free))
			}
		}
		eng, err := ivm.New[*data.Multiset](allBound, o, data.RelRing{}, lift, opts)
		if err != nil {
			return nil, err
		}
		r.relEng = eng
		return r, nil
	}
	return nil, fmt.Errorf("factorized: unknown mode %v", mode)
}

// multDelta converts a multiplicity delta into a relational-ring delta: a
// key with multiplicity m maps to the payload {() -> m}.
func multDelta(d *data.Relation[int64]) *data.Relation[*data.Multiset] {
	out := data.NewRelation[*data.Multiset](data.RelRing{}, d.Schema())
	d.Iterate(func(t data.Tuple, m int64) bool {
		out.Merge(t, data.UnitMultisetTimes(m))
		return true
	})
	return out
}

// Load installs initial relation contents as a multiplicity relation.
func (r *Result) Load(rel string, d *data.Relation[int64]) error {
	if r.keysEng != nil {
		return r.keysEng.Load(rel, d)
	}
	return r.relEng.Load(rel, multDelta(d))
}

// Init evaluates the initial views.
func (r *Result) Init() error {
	if r.keysEng != nil {
		return r.keysEng.Init()
	}
	return r.relEng.Init()
}

// ApplyDelta maintains the result under a multiplicity delta.
func (r *Result) ApplyDelta(rel string, d *data.Relation[int64]) error {
	if r.keysEng != nil {
		return r.keysEng.ApplyDelta(rel, d)
	}
	return r.relEng.ApplyDelta(rel, multDelta(d))
}

// Count returns the total number of result tuples, with multiplicities.
func (r *Result) Count() int64 {
	if r.keysEng != nil {
		var n int64
		r.keysEng.Result().Iterate(func(_ data.Tuple, m int64) bool {
			n += m
			return true
		})
		return n
	}
	var n int64
	r.relEng.Result().Iterate(func(_ data.Tuple, p *data.Multiset) bool {
		n += p.TotalMult()
		return true
	})
	return n
}

// DistinctCount returns the number of distinct result tuples. For
// FactPayloads it enumerates the factorization.
func (r *Result) DistinctCount() int64 {
	switch {
	case r.keysEng != nil:
		return int64(r.keysEng.Result().Len())
	case r.Mode == ListPayloads:
		var n int64
		r.relEng.Result().Iterate(func(_ data.Tuple, p *data.Multiset) bool {
			n += int64(p.Len())
			return true
		})
		return n
	default:
		var n int64
		r.Enumerate(func(data.Tuple) bool {
			n++
			return true
		})
		return n
	}
}

// MemoryBytes estimates the footprint of all materialized state.
func (r *Result) MemoryBytes() int {
	if r.keysEng != nil {
		return r.keysEng.MemoryBytes()
	}
	return r.relEng.MemoryBytes()
}

// SizeValues returns the representation size as a count of stored values:
// for listing keys, result tuples × arity; for listing payloads, payload
// tuples × arity; for factorized payloads, the total number of values
// stored across all view payloads — the paper's factorization size metric
// (e.g. Housing's root view stores 25,000 join-variable values regardless
// of scale).
func (r *Result) SizeValues() int64 {
	if r.keysEng != nil {
		return int64(r.keysEng.Result().Len()) * int64(len(r.Output))
	}
	var n int64
	if r.Mode == ListPayloads {
		r.relEng.Result().Iterate(func(_ data.Tuple, p *data.Multiset) bool {
			n += int64(p.Len()) * int64(len(p.Schema()))
			return true
		})
		return n
	}
	r.relEng.Tree().Walk(func(node *viewtree.Node) {
		v := r.relEng.ViewOf(node)
		if v == nil {
			return
		}
		v.Iterate(func(_ data.Tuple, p *data.Multiset) bool {
			n += int64(p.Len()) * int64(max(1, len(p.Schema())))
			return true
		})
	})
	return n
}

// ViewCount reports the number of materialized views.
func (r *Result) ViewCount() int {
	if r.keysEng != nil {
		return r.keysEng.ViewCount()
	}
	return r.relEng.ViewCount()
}

// Enumerate visits every distinct result tuple (over Output, in Output
// order) until the callback returns false. For ListKeys and ListPayloads it
// scans the listing; for FactPayloads it walks the factorization with
// constant delay per tuple, multiplying out unions along the view tree.
//
// Enumerate reads the engines' live views and therefore must not race
// ApplyDelta; concurrent enumeration pins an epoch first via Snapshot.
func (r *Result) Enumerate(cb func(t data.Tuple) bool) {
	switch {
	case r.keysEng != nil:
		proj := data.MustProjector(r.keysEng.Result().Schema(), r.Output)
		r.keysEng.Result().Iterate(func(t data.Tuple, _ int64) bool {
			return cb(proj.Apply(t))
		})
	case r.Mode == ListPayloads:
		r.relEng.Result().Iterate(func(_ data.Tuple, p *data.Multiset) bool {
			keep := true
			proj := data.MustProjector(p.Schema(), r.Output)
			p.Iterate(func(t data.Tuple, _ int64) bool {
				keep = cb(proj.Apply(t))
				return keep
			})
			return keep
		})
	default:
		enumerateFactorized(r.relEng.Tree(), r.Output, func(n *viewtree.Node, key data.Tuple) (*data.Multiset, bool) {
			view := r.relEng.ViewOf(n)
			if view == nil {
				return nil, false
			}
			return view.Get(key)
		}, cb)
	}
}

// enumerateFactorized walks the view tree: at each view whose marginalized
// variables include output variables, the payload under the current key
// supplies their values; children are then visited with the extended
// context. Views marginalizing only bound variables contribute nothing to
// tuples and are skipped. The view accessor abstracts over live views and
// pinned snapshots.
func enumerateFactorized(root *viewtree.Node, free data.Schema, view func(n *viewtree.Node, key data.Tuple) (*data.Multiset, bool), cb func(t data.Tuple) bool) {

	// Collect, per node, whether its subtree contributes output variables.
	contributes := make(map[*viewtree.Node]bool)
	var mark func(n *viewtree.Node) bool
	mark = func(n *viewtree.Node) bool {
		c := len(data.Schema(n.Marg).Intersect(free)) > 0
		for _, ch := range n.Children {
			if mark(ch) {
				c = true
			}
		}
		contributes[n] = c
		return c
	}
	mark(root)

	ctx := make(map[string]data.Value)
	stop := false

	// rec visits node n under the current context, extending assignments.
	var rec func(nodes []*viewtree.Node, emit func())
	rec = func(nodes []*viewtree.Node, emit func()) {
		if stop {
			return
		}
		// Find the next contributing inner node.
		for len(nodes) > 0 && (nodes[0].IsLeaf() || !contributes[nodes[0]]) {
			nodes = nodes[1:]
		}
		if len(nodes) == 0 {
			emit()
			return
		}
		n := nodes[0]
		rest := nodes[1:]
		key := make(data.Tuple, len(n.Keys))
		for i, v := range n.Keys {
			key[i] = ctx[v]
		}
		payload, ok := view(n, key)
		if !ok {
			return
		}
		ownFree := data.Schema(n.Marg).Intersect(free)
		if len(ownFree) == 0 {
			// Pure connector: descend into children under the same context.
			rec(append(append([]*viewtree.Node(nil), n.Children...), rest...), emit)
			return
		}
		proj := data.MustProjector(payload.Schema(), ownFree)
		payload.Iterate(func(t data.Tuple, _ int64) bool {
			vals := proj.Apply(t)
			for i, v := range ownFree {
				ctx[v] = vals[i]
			}
			rec(append(append([]*viewtree.Node(nil), n.Children...), rest...), emit)
			for _, v := range ownFree {
				delete(ctx, v)
			}
			return !stop
		})
	}

	rec([]*viewtree.Node{root}, func() {
		out := make(data.Tuple, len(free))
		for i, v := range free {
			out[i] = ctx[v]
		}
		if !cb(out) {
			stop = true
		}
	})
}

// --- epoch-pinned snapshots ---------------------------------------------------

// ResultSnapshot is an immutable, epoch-pinned view of a maintained
// conjunctive query result: all counting and enumeration — including
// constant-delay factorized enumeration for FactPayloads — runs against one
// consistent published epoch, so it is safe from any goroutine while
// maintenance keeps streaming.
type ResultSnapshot struct {
	// Mode and Output mirror the Result this snapshot was pinned from.
	Mode   Mode
	Output data.Schema

	tree *viewtree.Node
	keys *ivm.ViewSnapshot[int64]
	rel  *ivm.ViewSnapshot[*data.Multiset]
}

// Snapshot pins the engine's current published epoch. The first call
// enables snapshot publication and must come from the maintenance
// goroutine (typically right after Init); afterwards Snapshot may be called
// from any goroutine.
func (r *Result) Snapshot() *ResultSnapshot {
	s := &ResultSnapshot{Mode: r.Mode, Output: r.Output}
	if r.keysEng != nil {
		s.keys = r.keysEng.Snapshot()
		return s
	}
	s.tree = r.relEng.Tree()
	s.rel = r.relEng.Snapshot()
	return s
}

// Epoch returns the pinned epoch number.
func (s *ResultSnapshot) Epoch() uint64 {
	if s.keys != nil {
		return s.keys.Epoch
	}
	return s.rel.Epoch
}

// Count returns the total number of result tuples, with multiplicities, in
// the pinned epoch.
func (s *ResultSnapshot) Count() int64 {
	var n int64
	if s.keys != nil {
		s.keys.Result().Iterate(func(_ data.Tuple, m int64) bool {
			n += m
			return true
		})
		return n
	}
	s.rel.Result().Iterate(func(_ data.Tuple, p *data.Multiset) bool {
		n += p.TotalMult()
		return true
	})
	return n
}

// DistinctCount returns the number of distinct result tuples in the pinned
// epoch; for FactPayloads it enumerates the factorization.
func (s *ResultSnapshot) DistinctCount() int64 {
	switch {
	case s.keys != nil:
		return int64(s.keys.Result().Len())
	case s.Mode == ListPayloads:
		var n int64
		s.rel.Result().Iterate(func(_ data.Tuple, p *data.Multiset) bool {
			n += int64(p.Len())
			return true
		})
		return n
	default:
		var n int64
		s.Enumerate(func(data.Tuple) bool {
			n++
			return true
		})
		return n
	}
}

// Enumerate visits every distinct result tuple of the pinned epoch (over
// Output, in Output order) until the callback returns false; for
// FactPayloads it walks the factorization distributed over the pinned view
// snapshots with constant delay per tuple.
func (s *ResultSnapshot) Enumerate(cb func(t data.Tuple) bool) {
	switch {
	case s.keys != nil:
		res := s.keys.Result()
		proj := data.MustProjector(res.Schema(), s.Output)
		res.Iterate(func(t data.Tuple, _ int64) bool {
			return cb(proj.Apply(t))
		})
	case s.Mode == ListPayloads:
		s.rel.Result().Iterate(func(_ data.Tuple, p *data.Multiset) bool {
			keep := true
			proj := data.MustProjector(p.Schema(), s.Output)
			p.Iterate(func(t data.Tuple, _ int64) bool {
				keep = cb(proj.Apply(t))
				return keep
			})
			return keep
		})
	default:
		enumerateFactorized(s.tree, s.Output, func(n *viewtree.Node, key data.Tuple) (*data.Multiset, bool) {
			view := s.rel.ViewOf(n)
			if view == nil {
				return nil, false
			}
			return view.Get(key)
		}, cb)
	}
}
