package factorized

import (
	"math/rand"
	"sort"
	"testing"

	"fivm/internal/data"
	"fivm/internal/query"
	"fivm/internal/ring"
	"fivm/internal/vorder"
)

// paperCQ is Example 6.5: Q(A,B,C,D) = R(A,B), S(A,C,E), T(C,D).
func paperCQ() query.Query {
	return query.MustNew("cq", data.NewSchema("A", "B", "C", "D"),
		query.RelDef{Name: "R", Schema: data.NewSchema("A", "B")},
		query.RelDef{Name: "S", Schema: data.NewSchema("A", "C", "E")},
		query.RelDef{Name: "T", Schema: data.NewSchema("C", "D")},
	)
}

func paperOrder() *vorder.Order {
	return vorder.MustNew(vorder.V("A", vorder.V("B"), vorder.V("C", vorder.V("D"), vorder.V("E"))))
}

// figure2Data loads the database of Figure 2c with multiplicity-1 payloads.
func figure2Data() map[string]*data.Relation[int64] {
	mk := func(schema data.Schema, rows ...data.Tuple) *data.Relation[int64] {
		r := data.NewRelation[int64](ring.Int{}, schema)
		for _, t := range rows {
			r.Merge(t, 1)
		}
		return r
	}
	return map[string]*data.Relation[int64]{
		"R": mk(data.NewSchema("A", "B"), data.Ints(1, 1), data.Ints(1, 2), data.Ints(2, 3), data.Ints(3, 4)),
		"S": mk(data.NewSchema("A", "C", "E"),
			data.Ints(1, 1, 1), data.Ints(1, 1, 2), data.Ints(1, 2, 3), data.Ints(2, 2, 4)),
		"T": mk(data.NewSchema("C", "D"), data.Ints(1, 1), data.Ints(2, 2), data.Ints(2, 3), data.Ints(3, 4)),
	}
}

func newResult(t *testing.T, mode Mode, upd []string) *Result {
	t.Helper()
	r, err := New(mode, paperCQ(), paperOrder(), upd)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestFigure2eListing checks the listing result of Example 6.5: 8 tuples,
// with (a1,b1,c1,d1) and (a1,b2,c1,d1) having multiplicity 2.
func TestFigure2eListing(t *testing.T) {
	for _, mode := range []Mode{ListKeys, ListPayloads, FactPayloads} {
		r := newResult(t, mode, nil)
		for name, rel := range figure2Data() {
			if err := r.Load(name, rel); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.Init(); err != nil {
			t.Fatal(err)
		}
		if got := r.Count(); got != 10 {
			t.Errorf("%v: Count = %d, want 10", mode, got)
		}
		if got := r.DistinctCount(); got != 8 {
			t.Errorf("%v: DistinctCount = %d, want 8", mode, got)
		}
	}
}

// enumerate collects the sorted distinct tuples of a result.
func enumerate(r *Result) []string {
	var out []string
	r.Enumerate(func(t data.Tuple) bool {
		out = append(out, t.String())
		return true
	})
	sort.Strings(out)
	// Deduplicate (listing modes may emit one entry per stored tuple, which
	// is already distinct; keep this safe regardless).
	ded := out[:0]
	for i, s := range out {
		if i == 0 || s != out[i-1] {
			ded = append(ded, s)
		}
	}
	return ded
}

// TestEnumerationMatchesFigure2e checks the exact tuple set of Figure 2e.
func TestEnumerationMatchesFigure2e(t *testing.T) {
	want := []string{
		"(1,1,1,1)", "(1,1,2,2)", "(1,1,2,3)",
		"(1,2,1,1)", "(1,2,2,2)", "(1,2,2,3)",
		"(2,3,2,2)", "(2,3,2,3)",
	}
	for _, mode := range []Mode{ListKeys, ListPayloads, FactPayloads} {
		r := newResult(t, mode, nil)
		for name, rel := range figure2Data() {
			r.Load(name, rel)
		}
		if err := r.Init(); err != nil {
			t.Fatal(err)
		}
		got := enumerate(r)
		if len(got) != len(want) {
			t.Fatalf("%v: %d tuples, want %d: %v", mode, len(got), len(want), got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: tuples = %v, want %v", mode, got, want)
			}
		}
	}
}

// TestDifferentialModes drives all three modes through the same random
// stream and checks they agree on counts and tuple sets.
func TestDifferentialModes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := paperCQ()

	var rs []*Result
	for _, mode := range []Mode{ListKeys, ListPayloads, FactPayloads} {
		rs = append(rs, newResult(t, mode, nil))
	}
	for _, r := range rs {
		if err := r.Init(); err != nil {
			t.Fatal(err)
		}
	}

	names := q.RelNames()
	// Valid update streams only delete tuples that exist: the factorized
	// representation tracks derivation counts, which must stay non-negative
	// (over-deletion can cancel projected multiplicities to zero while
	// derivations remain, which no representation can recover from).
	live := make(map[string][]data.Tuple)
	for step := 0; step < 50; step++ {
		rel := names[rng.Intn(len(names))]
		rd, _ := q.Rel(rel)
		d := data.NewRelation[int64](ring.Int{}, rd.Schema)
		for i := 0; i < 1+rng.Intn(2); i++ {
			if n := len(live[rel]); n > 0 && rng.Intn(4) == 0 {
				// Delete a live tuple.
				k := rng.Intn(n)
				d.Merge(live[rel][k], -1)
				live[rel] = append(live[rel][:k], live[rel][k+1:]...)
				continue
			}
			tup := make(data.Tuple, len(rd.Schema))
			for j := range tup {
				tup[j] = data.Int(int64(rng.Intn(3)))
			}
			d.Merge(tup, 1)
			live[rel] = append(live[rel], tup)
		}
		if d.Len() == 0 {
			continue
		}
		for _, r := range rs {
			if err := r.ApplyDelta(rel, d.Clone()); err != nil {
				t.Fatalf("step %d %v: %v", step, r.Mode, err)
			}
		}
		c0 := rs[0].Count()
		for _, r := range rs[1:] {
			if got := r.Count(); got != c0 {
				t.Fatalf("step %d: %v Count = %d, want %d", step, r.Mode, got, c0)
			}
		}
		e0 := enumerate(rs[0])
		for _, r := range rs[1:] {
			e := enumerate(r)
			if len(e) != len(e0) {
				t.Fatalf("step %d: %v enumerates %d tuples, want %d", step, r.Mode, len(e), len(e0))
			}
			for i := range e0 {
				if e[i] != e0[i] {
					t.Fatalf("step %d: %v tuple %d = %s, want %s", step, r.Mode, i, e[i], e0[i])
				}
			}
		}
	}
}

// TestFactorizedSmaller reproduces the core size claim of Section 6.3: on a
// star join whose listing result grows multiplicatively, the factorized
// representation stays linear.
func TestFactorizedSmaller(t *testing.T) {
	q := query.MustNew("star", data.NewSchema("P", "X", "Y", "Z"),
		query.RelDef{Name: "R1", Schema: data.NewSchema("P", "X")},
		query.RelDef{Name: "R2", Schema: data.NewSchema("P", "Y")},
		query.RelDef{Name: "R3", Schema: data.NewSchema("P", "Z")},
	)
	mkOrder := func() *vorder.Order {
		return vorder.MustNew(vorder.V("P", vorder.V("X"), vorder.V("Y"), vorder.V("Z")))
	}
	k := 12 // values per relation per key
	load := func(r *Result) {
		for i, rel := range []string{"R1", "R2", "R3"} {
			rd, _ := q.Rel(rel)
			d := data.NewRelation[int64](ring.Int{}, rd.Schema)
			for p := 0; p < 3; p++ {
				for v := 0; v < k; v++ {
					d.Merge(data.Ints(int64(p), int64(v*10+i)), 1)
				}
			}
			if err := r.Load(rel, d); err != nil {
				t.Fatal(err)
			}
		}
	}
	fact, err := New(FactPayloads, q, mkOrder(), nil)
	if err != nil {
		t.Fatal(err)
	}
	list, err := New(ListPayloads, q, mkOrder(), nil)
	if err != nil {
		t.Fatal(err)
	}
	load(fact)
	load(list)
	if err := fact.Init(); err != nil {
		t.Fatal(err)
	}
	if err := list.Init(); err != nil {
		t.Fatal(err)
	}
	if fact.Count() != list.Count() {
		t.Fatalf("counts differ: %d vs %d", fact.Count(), list.Count())
	}
	// 3 keys × 12³ = 5184 listing tuples vs ~3×36 factorized values.
	if fm, lm := fact.MemoryBytes(), list.MemoryBytes(); fm*4 > lm {
		t.Errorf("factorized (%d B) not substantially smaller than listing (%d B)", fm, lm)
	}
}

func TestModeString(t *testing.T) {
	if ListKeys.String() != "List keys" || FactPayloads.String() != "Fact payloads" {
		t.Error("mode names")
	}
}

// TestSizeValues checks the factorization-size metric: on a star join the
// factorized size is linear in the per-key value counts while the listing
// sizes are multiplicative.
func TestSizeValues(t *testing.T) {
	q := query.MustNew("star", data.NewSchema("P", "X", "Y"),
		query.RelDef{Name: "R1", Schema: data.NewSchema("P", "X")},
		query.RelDef{Name: "R2", Schema: data.NewSchema("P", "Y")},
	)
	mkOrder := func() *vorder.Order {
		return vorder.MustNew(vorder.V("P", vorder.V("X"), vorder.V("Y")))
	}
	k := int64(10)
	load := func(r *Result) {
		for i, rel := range []string{"R1", "R2"} {
			rd, _ := q.Rel(rel)
			d := data.NewRelation[int64](ring.Int{}, rd.Schema)
			for v := int64(0); v < k; v++ {
				d.Merge(data.Ints(0, v*10+int64(i)), 1)
			}
			r.Load(rel, d)
		}
	}
	fact, _ := New(FactPayloads, q, mkOrder(), nil)
	keys, _ := New(ListKeys, q, mkOrder(), nil)
	load(fact)
	load(keys)
	if err := fact.Init(); err != nil {
		t.Fatal(err)
	}
	if err := keys.Init(); err != nil {
		t.Fatal(err)
	}
	// Listing: k² tuples × 3 values; factorized: ~1 + 2k values.
	if lk := keys.SizeValues(); lk != k*k*3 {
		t.Errorf("listing size = %d, want %d", lk, k*k*3)
	}
	if fs := fact.SizeValues(); fs > 3*k+3 {
		t.Errorf("factorized size = %d, want <= %d", fs, 3*k+3)
	}
}

// TestWindowedDeletionsThroughResult drives a sliding-window workload (with
// real deletions) through the factorized representation.
func TestWindowedDeletionsThroughResult(t *testing.T) {
	q := paperCQ()
	fact, err := New(FactPayloads, q, paperOrder(), nil)
	if err != nil {
		t.Fatal(err)
	}
	list, err := New(ListKeys, q, paperOrder(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := fact.Init(); err != nil {
		t.Fatal(err)
	}
	if err := list.Init(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	var windowS []data.Tuple
	const window = 8
	for step := 0; step < 60; step++ {
		d := data.NewRelation[int64](ring.Int{}, data.NewSchema("A", "C", "E"))
		tup := data.Ints(int64(rng.Intn(3)), int64(rng.Intn(3)), int64(rng.Intn(3)))
		d.Merge(tup, 1)
		windowS = append(windowS, tup)
		if len(windowS) > window {
			d.Merge(windowS[0], -1)
			windowS = windowS[1:]
		}
		if d.Len() == 0 {
			continue
		}
		if err := fact.ApplyDelta("S", d.Clone()); err != nil {
			t.Fatal(err)
		}
		if err := list.ApplyDelta("S", d.Clone()); err != nil {
			t.Fatal(err)
		}
		if fact.Count() != list.Count() {
			t.Fatalf("step %d: counts %d vs %d", step, fact.Count(), list.Count())
		}
	}
}

// TestSnapshotEnumerationMatchesLive pins an epoch, applies further updates,
// and checks (a) the pinned snapshot still enumerates the old state, (b) a
// fresh snapshot enumerates exactly what live enumeration sees — for all
// three representations, including the factorized walk.
func TestSnapshotEnumerationMatchesLive(t *testing.T) {
	enumerate := func(f func(cb func(data.Tuple) bool)) []string {
		var out []string
		f(func(tu data.Tuple) bool {
			out = append(out, tu.Key())
			return true
		})
		sort.Strings(out)
		return out
	}
	eq := func(a, b []string) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	for _, mode := range []Mode{ListKeys, ListPayloads, FactPayloads} {
		r := newResult(t, mode, nil)
		for name, rel := range figure2Data() {
			if err := r.Load(name, rel); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.Init(); err != nil {
			t.Fatal(err)
		}
		pinned := r.Snapshot()
		before := enumerate(pinned.Enumerate)
		if !eq(before, enumerate(r.Enumerate)) {
			t.Fatalf("%v: snapshot enumeration diverges from live at epoch 0", mode)
		}
		if pinned.Count() != r.Count() || pinned.DistinctCount() != r.DistinctCount() {
			t.Fatalf("%v: snapshot counts diverge", mode)
		}

		// Stream more data; the pinned epoch must not move.
		d := data.NewRelation[int64](ring.Int{}, data.NewSchema("A", "B"))
		d.Merge(data.Ints(2, 9), 1)
		if err := r.ApplyDelta("R", d); err != nil {
			t.Fatal(err)
		}
		if got := enumerate(pinned.Enumerate); !eq(got, before) {
			t.Fatalf("%v: pinned snapshot changed after update", mode)
		}
		fresh := r.Snapshot()
		if fresh.Epoch() != pinned.Epoch()+1 {
			t.Fatalf("%v: epoch %d after one batch, want %d", mode, fresh.Epoch(), pinned.Epoch()+1)
		}
		after := enumerate(fresh.Enumerate)
		if !eq(after, enumerate(r.Enumerate)) {
			t.Fatalf("%v: fresh snapshot diverges from live", mode)
		}
		if eq(after, before) {
			t.Fatalf("%v: update did not change the enumerated result", mode)
		}
	}
}
